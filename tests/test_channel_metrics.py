"""Tests for conditioning metrics (paper section 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    condition_number,
    condition_number_sq_db,
    mimo_capacity_bits,
    rayleigh_channel,
    stream_snr_after_zf,
    stream_snr_before_zf,
    worst_stream_degradation_db,
    zf_snr_degradation,
)


class TestConditionNumber:
    def test_identity_has_unit_condition(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)
        assert condition_number_sq_db(np.eye(4)) == pytest.approx(0.0)

    def test_diagonal_matrix(self):
        matrix = np.diag([10.0, 1.0]).astype(complex)
        assert condition_number(matrix) == pytest.approx(10.0)
        assert condition_number_sq_db(matrix) == pytest.approx(20.0)

    def test_singular_matrix_is_infinite(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        assert condition_number(matrix) == np.inf
        assert condition_number_sq_db(matrix) == np.inf

    def test_unitary_invariance(self):
        rng = np.random.default_rng(0)
        channel = rayleigh_channel(4, 4, rng)
        q, _ = np.linalg.qr(rayleigh_channel(4, 4, rng))
        assert condition_number(q @ channel) == pytest.approx(condition_number(channel))


class TestZfDegradation:
    def test_orthogonal_channel_has_no_degradation(self):
        assert np.allclose(zf_snr_degradation(np.eye(3) * 2.0), 1.0)
        assert worst_stream_degradation_db(np.eye(3)) == pytest.approx(0.0)

    def test_degradation_matches_snr_ratio(self):
        """lambda_k must equal SNR_before / SNR_after for every stream."""
        channel = rayleigh_channel(4, 3, rng=1)
        noise_variance = 0.1
        before = stream_snr_before_zf(channel, noise_variance)
        after = stream_snr_after_zf(channel, noise_variance)
        assert zf_snr_degradation(channel) == pytest.approx(before / after)

    def test_rejects_wide_channel(self):
        with pytest.raises(ValueError):
            zf_snr_degradation(rayleigh_channel(2, 4, rng=0))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_degradation_at_least_one(self, seed):
        channel = rayleigh_channel(4, 4, rng=seed)
        assert (zf_snr_degradation(channel) >= 1.0).all()

    def test_singular_channel_gives_infinite_lambda(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        assert worst_stream_degradation_db(matrix) == np.inf or (
            worst_stream_degradation_db(matrix) > 100.0
        )


class TestCapacity:
    def test_capacity_grows_with_snr(self):
        channel = rayleigh_channel(4, 4, rng=2)
        low = mimo_capacity_bits(channel, 1.0)
        high = mimo_capacity_bits(channel, 100.0)
        assert high > low

    def test_identity_capacity_closed_form(self):
        snr = 10.0
        capacity = mimo_capacity_bits(np.eye(2), snr)
        assert capacity == pytest.approx(2 * np.log2(1 + snr / 2))

    def test_more_antennas_more_capacity(self):
        rng = np.random.default_rng(3)
        small = np.mean([
            mimo_capacity_bits(rayleigh_channel(2, 2, rng), 10.0) for _ in range(100)
        ])
        large = np.mean([
            mimo_capacity_bits(rayleigh_channel(4, 4, rng), 10.0) for _ in range(100)
        ])
        assert large > 1.5 * small

    def test_rejects_bad_snr(self):
        with pytest.raises(ValueError):
            mimo_capacity_bits(np.eye(2), 0.0)
