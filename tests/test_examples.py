"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the repository promises at least three examples"


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print their findings"


def test_quickstart_reports_savings():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert "recovered bits match: True" in completed.stdout
    assert "saves" in completed.stdout
