"""Property-based tests for the PHY chain and link invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import rayleigh_channel
from repro.constellation import qam
from repro.detect import SphereDetector
from repro.phy import (
    PhyConfig,
    default_config,
    encode_stream,
    frame_airtime_s,
    phy_rate_bps,
    rayleigh_source,
    recover_stream,
    simulate_frame,
)
from repro.sphere import SphereDecoder, geosphere_decoder

configs = st.builds(
    default_config,
    order=st.sampled_from([4, 16, 64]),
    payload_bits=st.integers(min_value=40, max_value=600),
    coded=st.booleans(),
)


class TestChainProperties:
    @settings(max_examples=25, deadline=None)
    @given(configs, st.integers(min_value=0, max_value=2**31 - 1))
    def test_perfect_detection_roundtrip(self, config, seed):
        """For any format, undisturbed symbols decode to the payload."""
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 2, config.payload_bits).astype(np.uint8)
        frame = encode_stream(payload, config)
        decision = recover_stream(
            frame.symbol_indices.reshape(frame.grid.shape),
            frame.num_pad_bits, config)
        assert decision.crc_ok
        assert (decision.payload_bits == payload).all()

    @settings(max_examples=25, deadline=None)
    @given(configs)
    def test_frame_respects_ofdm_granularity(self, config):
        payload = np.zeros(config.payload_bits, dtype=np.uint8)
        frame = encode_stream(payload, config)
        n_cbps = config.coded_bits_per_ofdm_symbol
        assert frame.coded_bits.size % n_cbps == 0
        assert frame.grid.shape[1] == config.ofdm.num_data_subcarriers
        assert 0 <= frame.num_pad_bits < n_cbps

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.sampled_from([4, 16, 64]))
    def test_net_throughput_never_exceeds_phy_rate(self, num_clients, order):
        config = default_config(order=order, payload_bits=120)
        payload_fraction = config.payload_bits  # info bits actually carried
        frame = encode_stream(np.zeros(config.payload_bits, dtype=np.uint8),
                              config)
        airtime = frame_airtime_s(frame.grid.shape[0], config)
        best_case = num_clients * payload_fraction / airtime
        assert best_case <= phy_rate_bps(config, num_clients) * 1.0 + 1e-9


class TestNodeBudget:
    def test_budget_caps_visited_nodes(self):
        constellation = qam(16)
        decoder = SphereDecoder(constellation, node_budget=10)
        rng = np.random.default_rng(0)
        channel = rayleigh_channel(4, 4, rng)
        y = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        result = decoder.decode(channel, y)
        assert result.counters.visited_nodes <= 10 + 4  # budget + one path

    def test_budget_result_still_valid_leaf(self):
        """Even truncated, the decoder returns a genuine leaf whose
        distance matches its symbols."""
        constellation = qam(16)
        decoder = SphereDecoder(constellation, node_budget=8)
        rng = np.random.default_rng(1)
        channel = rayleigh_channel(4, 4, rng)
        sent = rng.integers(0, 16, size=4)
        y = channel @ constellation.points[sent]
        result = decoder.decode(channel, y)
        if result.found:
            residual = float(np.sum(np.abs(y - channel @ result.symbols) ** 2))
            assert result.distance_sq == pytest.approx(residual, abs=1e-9)

    def test_generous_budget_is_exact_ml(self):
        constellation = qam(16)
        unbudgeted = geosphere_decoder(constellation)
        budgeted = SphereDecoder(constellation, node_budget=1_000_000)
        rng = np.random.default_rng(2)
        for _ in range(5):
            channel = rayleigh_channel(3, 3, rng)
            y = rng.standard_normal(3) + 1j * rng.standard_normal(3)
            a = unbudgeted.decode(channel, y)
            b = budgeted.decode(channel, y)
            assert (a.symbol_indices == b.symbol_indices).all()

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            SphereDecoder(qam(4), node_budget=0)


class TestFramePayloadControl:
    def test_explicit_payloads_are_used(self):
        config = default_config(order=4, payload_bits=100)
        rng = np.random.default_rng(3)
        channel = rayleigh_source(4, 2, rng)()
        payloads = [np.zeros(100, dtype=np.uint8),
                    np.ones(100, dtype=np.uint8)]
        detector = SphereDetector(geosphere_decoder(config.constellation))
        outcome = simulate_frame(channel, detector, config, snr_db=40.0,
                                 rng=rng, payloads=payloads)
        assert outcome.stream_success.all()

    def test_mismatched_payload_length_raises(self):
        config = default_config(order=4, payload_bits=100)
        channel = rayleigh_source(4, 2, rng=4)()
        detector = SphereDetector(geosphere_decoder(config.constellation))
        with pytest.raises(ValueError):
            simulate_frame(channel, detector, config, snr_db=20.0, rng=5,
                           payloads=[np.zeros(64, dtype=np.uint8)] * 2)


class TestConfig:
    def test_with_constellation_preserves_format(self):
        config = PhyConfig(constellation=qam(16), payload_bits=256)
        denser = config.with_constellation(64)
        assert denser.constellation.order == 64
        assert denser.payload_bits == 256
        assert denser.code is config.code

    def test_rejects_tiny_payload(self):
        with pytest.raises(ValueError):
            PhyConfig(constellation=qam(4), payload_bits=4)


class TestThresholdRateAdapter:
    def test_default_thresholds_monotone(self):
        from repro.phy.rate_adaptation import ThresholdRateAdapter
        adapter = ThresholdRateAdapter()
        assert adapter.choose_order(5.0) == 4
        assert adapter.choose_order(18.0) == 16
        assert adapter.choose_order(30.0) == 64

    def test_custom_table(self):
        from repro.phy.rate_adaptation import ThresholdRateAdapter
        adapter = ThresholdRateAdapter({4: float("-inf"), 256: 35.0})
        assert adapter.choose_order(34.0) == 4
        assert adapter.choose_order(36.0) == 256
        assert adapter.orders == (4, 256)

    def test_choose_config(self):
        from repro.phy.rate_adaptation import ThresholdRateAdapter
        config = default_config(order=4, payload_bits=200)
        adapter = ThresholdRateAdapter()
        chosen = adapter.choose_config(config, 25.0)
        assert chosen.constellation.order == 64
        assert chosen.payload_bits == 200

    def test_requires_fallback_modulation(self):
        from repro.phy.rate_adaptation import ThresholdRateAdapter
        with pytest.raises(ValueError):
            ThresholdRateAdapter({16: 17.0})
