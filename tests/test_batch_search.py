"""Differential tests for the breadth-synchronised frontier engine.

The frontier engine (:mod:`repro.sphere.batch_search`) must be
*bit-identical* to both the scalar search and the row-by-row loop driver:
same symbol decisions, same distances, same ``found`` flags, same
aggregated complexity counters — equality, not ``allclose``.  These
tests sweep randomized channels over every enumerator variant,
constellation order, antenna geometry and radius/budget configuration,
plus the engine-specific knobs (drain threshold, small-batch fallback)
the equivalence suite cannot see through ``decode_batch`` alone.
"""

import numpy as np
import pytest

from repro.channel import awgn, noise_variance_for_snr, rayleigh_channel
from repro.constellation import qam
from repro.sphere import (
    FRONTIER_MIN_BATCH,
    SphereDecoder,
    frontier_decode_batch,
    triangularize,
)
from repro.sphere.counters import ComplexityCounters
from repro.sphere.decoder import ENUMERATORS

COUNTER_FIELDS = ("ped_calcs", "visited_nodes", "expanded_nodes", "leaves",
                  "geometric_prunes", "complex_mults")

#: (order, num_tx, num_rx, snr_db) — 4/16/64-QAM over 2x2, 3x4 and 4x4.
CONFIGS = [
    (4, 2, 2, 12.0),
    (4, 4, 4, 14.0),
    (16, 2, 2, 18.0),
    (16, 3, 4, 19.0),
    (16, 4, 4, 20.0),
    (64, 2, 2, 24.0),
    (64, 4, 4, 26.0),
]


def _triangular_batch(order, num_tx, num_rx, snr_db, rng, size=8):
    constellation = qam(order)
    channel = rayleigh_channel(num_rx, num_tx, rng)
    sent = rng.integers(0, order, size=(size, num_tx))
    noise_variance = noise_variance_for_snr(channel, snr_db)
    received = (constellation.points[sent] @ channel.T
                + awgn((size, num_rx), noise_variance, rng))
    q, r = triangularize(channel)
    return constellation, r, received @ np.conj(q)


def _pair(order, enumerator, **kwargs):
    """A loop-strategy reference decoder and a frontier decoder with the
    same configuration."""
    pruning = enumerator in ("zigzag", "shabany")
    loop = SphereDecoder(qam(order), enumerator=enumerator,
                         geometric_pruning=pruning, batch_strategy="loop",
                         **kwargs)
    frontier = SphereDecoder(qam(order), enumerator=enumerator,
                             geometric_pruning=pruning, **kwargs)
    return loop, frontier


def _assert_identical(reference, engine, label=""):
    assert np.array_equal(reference.found, engine.found), label
    assert np.array_equal(reference.symbol_indices,
                          engine.symbol_indices), label
    # Bit-identical, not allclose: the frontier must run the same
    # floating-point program as the scalar search.
    matched = ((reference.distances_sq == engine.distances_sq)
               | (np.isinf(reference.distances_sq)
                  & np.isinf(engine.distances_sq)))
    assert matched.all(), label
    for field in COUNTER_FIELDS:
        assert (getattr(reference.counters, field)
                == getattr(engine.counters, field)), (label, field)


@pytest.mark.slow
@pytest.mark.parametrize("enumerator", ENUMERATORS)
def test_frontier_matches_loop_and_scalar(enumerator):
    """Randomized sweep: frontier == loop == per-vector scalar decode,
    decisions, distances, found flags and counters all bit-equal."""
    rng = np.random.default_rng(987)
    for order, num_tx, num_rx, snr_db in CONFIGS:
        loop, frontier = _pair(order, enumerator)
        for _ in range(6):
            _, r, y_hat = _triangular_batch(order, num_tx, num_rx, snr_db,
                                            rng)
            reference = loop.decode_batch(r, y_hat)
            engine = frontier.decode_batch(r, y_hat)
            _assert_identical(reference, engine, (enumerator, order, num_tx))
            # Scalar cross-check on top of the loop driver.
            totals = ComplexityCounters()
            for t, row in enumerate(y_hat):
                scalar = loop.decode_triangular(r, row)
                totals.merge(scalar.counters)
                assert np.array_equal(engine.symbol_indices[t],
                                      scalar.symbol_indices)
                assert engine.distances_sq[t] == scalar.distance_sq
            assert engine.counters.ped_calcs == totals.ped_calcs


@pytest.mark.slow
@pytest.mark.parametrize("enumerator", ENUMERATORS)
@pytest.mark.parametrize("drain_threshold", [0, 3, 1000])
def test_frontier_drain_settings_are_bit_identical(enumerator,
                                                   drain_threshold):
    """Pure lockstep, mid-search drain and immediate full drain all run
    the same per-element program — results cannot depend on scheduling."""
    rng = np.random.default_rng(321)
    for order, num_tx, num_rx, snr_db in [(16, 4, 4, 20.0), (64, 2, 4, 24.0)]:
        loop, frontier = _pair(order, enumerator)
        for _ in range(4):
            _, r, y_hat = _triangular_batch(order, num_tx, num_rx, snr_db,
                                            rng)
            reference = loop.decode_batch(r, y_hat)
            engine = frontier_decode_batch(frontier, r, y_hat,
                                           drain_threshold=drain_threshold)
            _assert_identical(reference, engine,
                              (enumerator, drain_threshold))


@pytest.mark.parametrize("enumerator", ENUMERATORS)
def test_finite_initial_radius_found_flags(enumerator):
    """Finite radii that exclude some or all leaves: found flags,
    -1/NaN/inf sentinels and counters must match the loop exactly."""
    rng = np.random.default_rng(55)
    loop_all, frontier_all = _pair(16, enumerator,
                                   initial_radius_sq=1e-12)
    _, r, y_hat = _triangular_batch(16, 4, 4, 20.0, rng)
    reference = loop_all.decode_batch(r, y_hat)
    engine = frontier_all.decode_batch(r, y_hat)
    assert not engine.found.any()
    assert (engine.symbol_indices == -1).all()
    assert np.isinf(engine.distances_sq).all()
    assert np.isnan(engine.symbols).all()
    _assert_identical(reference, engine)

    # A radius between the ML distances splits the batch.
    exact = SphereDecoder(qam(16), enumerator=enumerator,
                          geometric_pruning=enumerator in ("zigzag",
                                                           "shabany"))
    threshold = float(np.median(exact.decode_batch(r, y_hat).distances_sq))
    loop_mid, frontier_mid = _pair(16, enumerator,
                                   initial_radius_sq=threshold)
    reference = loop_mid.decode_batch(r, y_hat)
    engine = frontier_mid.decode_batch(r, y_hat)
    assert engine.found.any() and not engine.found.all()
    _assert_identical(reference, engine)


@pytest.mark.parametrize("node_budget", [1, 5, 50])
def test_node_budget_early_stop_matches(node_budget):
    """The per-element node budget stops each search at the same node as
    the scalar guard (best-so-far kept, counters frozen)."""
    rng = np.random.default_rng(77)
    loop, frontier = _pair(16, "zigzag", node_budget=node_budget)
    for _ in range(4):
        _, r, y_hat = _triangular_batch(16, 4, 4, 16.0, rng)
        _assert_identical(loop.decode_batch(r, y_hat),
                          frontier.decode_batch(r, y_hat),
                          node_budget)


def test_small_batches_fall_back_to_the_loop():
    """Below FRONTIER_MIN_BATCH the dispatcher uses the loop driver; at
    or above it the frontier — and both agree either way."""
    rng = np.random.default_rng(11)
    loop, frontier = _pair(16, "zigzag")
    _, r, y_hat = _triangular_batch(16, 4, 4, 20.0, rng,
                                    size=FRONTIER_MIN_BATCH + 3)
    for size in (1, FRONTIER_MIN_BATCH - 1, FRONTIER_MIN_BATCH,
                 FRONTIER_MIN_BATCH + 3):
        _assert_identical(loop.decode_batch(r, y_hat[:size]),
                          frontier.decode_batch(r, y_hat[:size]), size)


def test_empty_batch_is_a_no_op():
    frontier = SphereDecoder(qam(16))
    rng = np.random.default_rng(40)
    _, r, _ = _triangular_batch(16, 4, 4, 20.0, rng)
    result = frontier_decode_batch(frontier, r,
                                   np.zeros((0, 4), dtype=np.complex128))
    assert result.found.shape == (0,)
    assert result.symbol_indices.shape == (0, 4)
    assert result.counters.ped_calcs == 0
    assert result.counters.visited_nodes == 0


def test_single_stream_channel():
    """nc == 1: the root level is the leaf level; no interference path."""
    rng = np.random.default_rng(13)
    constellation = qam(16)
    channel = rayleigh_channel(2, 1, rng)
    sent = rng.integers(0, 16, size=(9, 1))
    received = (constellation.points[sent] @ channel.T
                + awgn((9, 2), 0.05, rng))
    q, r = triangularize(channel)
    y_hat = received @ np.conj(q)
    loop, frontier = _pair(16, "zigzag")
    _assert_identical(loop.decode_batch(r, y_hat),
                      frontier.decode_batch(r, y_hat))


def test_trace_records_drained_elements():
    """The observability trace names the elements the straggler drain
    finished; with drain_threshold=0 nothing is drained."""
    rng = np.random.default_rng(29)
    frontier = SphereDecoder(qam(16))
    _, r, y_hat = _triangular_batch(16, 4, 4, 18.0, rng, size=12)
    trace = {}
    frontier_decode_batch(frontier, r, y_hat, drain_threshold=4,
                          trace=trace)
    assert 1 <= len(trace["drained"]) <= 4
    trace = {}
    frontier_decode_batch(frontier, r, y_hat, drain_threshold=0,
                          trace=trace)
    assert "drained" not in trace


@pytest.mark.slow
def test_frontier_beats_loop_on_fixed_workload():
    """Latency regression smoke test: the frontier engine must beat the
    loop fallback on 16-QAM 4x4 x 64 subcarriers.  The measured margin is
    ~5x (see benchmarks/bench_decode_latency.py); the 2x assertion floor
    keeps CI stable on noisy runners."""
    import time

    rng = np.random.default_rng(42)
    _, r, y_hat = _triangular_batch(16, 4, 4, 22.0, rng, size=64)
    loop, frontier = _pair(16, "zigzag")

    def best_of(function, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            function()
            best = min(best, time.perf_counter() - start)
        return best

    _assert_identical(loop.decode_batch(r, y_hat),
                      frontier.decode_batch(r, y_hat))
    loop_s = best_of(lambda: loop.decode_batch(r, y_hat))
    frontier_s = best_of(lambda: frontier.decode_batch(r, y_hat))
    speedup = loop_s / frontier_s
    assert speedup >= 2.0, (
        f"frontier speedup {speedup:.2f}x fell below the 2x regression "
        f"floor (loop {loop_s * 1e3:.2f} ms, frontier "
        f"{frontier_s * 1e3:.2f} ms)")
