"""Seeded golden regression for the link simulator.

The batched receive rework (``simulate_frame`` → ``detect_uplink`` →
``detect_batch``) must not silently change link-level results.  These
goldens pin a fixed-seed short run — frame error rate, net throughput and
the full complexity-counter totals — so any change to the receive chain's
arithmetic, detection order or counter accounting shows up as a hard
failure rather than a drifting benchmark.

The counter goldens are exact integers; the rate metrics are floats
asserted to near machine precision.  If an *intentional* change to the
receive chain alters these numbers, re-derive the goldens with the
script embedded in each test (seeds 2024/7) and say so in the commit.
"""

import numpy as np
import pytest

from repro.detect import SphereDetector, ZeroForcingDetector
from repro.phy import LinkSimulator, default_config, rayleigh_source
from repro.phy.soft_link import simulate_frame_soft
from repro.sphere import ListSphereDecoder, geosphere_decoder
from repro.sphere.counters import ComplexityCounters


def _run(detector_factory, snr_db, frame_strategy="frame"):
    config = default_config(order=16, payload_bits=256)
    detector = detector_factory(config.constellation)
    simulator = LinkSimulator(detector, config, snr_db=snr_db,
                              frame_strategy=frame_strategy)
    return simulator.run(rayleigh_source(4, 4, rng=2024), num_frames=4, rng=7)


class TestGeosphereGolden:
    """16-QAM, 4 clients on 4 antennas, 11 dB, 4 frames, seeds (2024, 7)."""

    def _stats(self):
        return _run(lambda c: SphereDetector(geosphere_decoder(c)), 11.0)

    def test_frame_statistics(self):
        stats = self._stats()
        assert stats.frames == 4
        assert stats.stream_frames == 16
        assert stats.stream_successes == 3
        assert stats.detections == 768
        assert stats.frame_error_rate == 0.8125
        assert stats.delivered_info_bits == 768.0
        np.testing.assert_allclose(stats.airtime_s, 6.4e-05, rtol=1e-12)
        np.testing.assert_allclose(stats.throughput_bps, 12_000_000.0,
                                   rtol=1e-12)

    def test_counter_totals(self):
        stats = self._stats()
        assert stats.has_counters
        counters = stats.counters
        assert counters.ped_calcs == 46_777
        assert counters.visited_nodes == 22_151
        assert counters.expanded_nodes == 20_819
        assert counters.leaves == 2_100
        assert counters.geometric_prunes == 9_294
        assert counters.complex_mults == 233_885
        # Derived metric used by the Figs. 14-15 reproduction.
        np.testing.assert_allclose(stats.avg_ped_calcs_per_detection,
                                   46_777 / 768, rtol=1e-12)

    @pytest.mark.parametrize("frame_strategy", ["frame", "per_subcarrier"])
    def test_goldens_invariant_under_frame_strategy(self, frame_strategy):
        """The frame engine's bit-exactness contract, pinned at link
        level: switching :func:`repro.phy.receiver.detect_uplink` between
        the whole-frame scheduler and the per-subcarrier loop must leave
        every golden — error rate, throughput and the exact counter
        integers — untouched."""
        stats = _run(lambda c: SphereDetector(geosphere_decoder(c)), 11.0,
                     frame_strategy=frame_strategy)
        assert stats.stream_successes == 3
        assert stats.frame_error_rate == 0.8125
        counters = stats.counters
        assert counters.ped_calcs == 46_777
        assert counters.visited_nodes == 22_151
        assert counters.expanded_nodes == 20_819
        assert counters.leaves == 2_100
        assert counters.geometric_prunes == 9_294
        assert counters.complex_mults == 233_885


class TestSoftChainGolden:
    """Soft receive chain: 16-QAM, 2 clients on 4 antennas, 10 dB,
    4 frames, seeds (2024, 7), list size 8.

    Pins the list-sphere chain under *both* frame strategies: the
    whole-frame list frontier and the per-subcarrier scalar loop must
    deliver the same stream verdicts and the exact same counter
    integers.  Re-derive with this loop (and say so in the commit) only
    for an intentional change to the soft chain's arithmetic.
    """

    def _run(self, frame_strategy):
        config = default_config(order=16, payload_bits=256)
        decoder = ListSphereDecoder(config.constellation, list_size=8)
        source = rayleigh_source(4, 2, rng=2024)
        rng = np.random.default_rng(7)
        totals = ComplexityCounters()
        successes = stream_frames = detections = 0
        for _ in range(4):
            outcome = simulate_frame_soft(source(), decoder, config, 10.0,
                                          rng, frame_strategy=frame_strategy)
            successes += int(outcome.stream_success.sum())
            stream_frames += outcome.stream_success.size
            detections += outcome.detections
            totals.merge(outcome.counters)
        return successes, stream_frames, detections, totals

    @pytest.mark.parametrize("frame_strategy", ["frame", "per_subcarrier"])
    def test_soft_goldens_invariant_under_frame_strategy(self,
                                                         frame_strategy):
        successes, stream_frames, detections, counters = self._run(
            frame_strategy)
        assert successes == 7
        assert stream_frames == 8
        assert detections == 768
        assert counters.ped_calcs == 23_999
        assert counters.visited_nodes == 15_074
        assert counters.expanded_nodes == 4_317
        assert counters.leaves == 11_525
        assert counters.geometric_prunes == 2_970
        assert counters.complex_mults == 71_997


class TestZeroForcingGolden:
    """Same channels and seeds through the linear path (no counters)."""

    def test_frame_statistics(self):
        stats = _run(ZeroForcingDetector, 11.0)
        assert stats.frames == 4
        assert stats.stream_frames == 16
        assert not stats.has_counters
        assert np.isnan(stats.avg_ped_calcs_per_detection)
        # ZF on an i.i.d. 4x4 channel at 11 dB delivers nothing: the
        # noise amplification the paper opens with.
        assert stats.stream_successes == 0
        assert stats.throughput_bps == 0.0
