"""Tests for the experiment drivers (tiny workloads, shape assertions)."""

import numpy as np
import pytest

from repro.experiments import (
    ablation_enumeration,
    ablation_pruning,
    fig09_conditioning,
    fig10_degradation,
    fig11_throughput,
    fig12_scaling,
    fig13_mmse_sic,
    fig14_complexity_testbed,
    fig15_complexity_sim,
    table1_summary,
)
from repro.experiments.common import (
    QUICK,
    Scale,
    filter_trace_links,
    format_table,
    fraction_above,
    get_scale,
    make_detector,
)
from repro.experiments.common import testbed_trace as load_testbed_trace
from repro.constellation import qam

# Tiny scale for tests: reuses the cached 20-link traces but runs minimal
# frame/vector counts.
TINY = Scale(name="tiny", num_links=20, num_frames=2, payload_bits=184,
             num_vectors=40)


class TestCommon:
    def test_get_scale_resolution(self):
        assert get_scale("quick") is QUICK
        assert get_scale(TINY) is TINY
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_fraction_above(self):
        assert fraction_above([1.0, 5.0, 20.0, np.inf], 10.0) == pytest.approx(0.5)
        assert np.isnan(fraction_above([], 1.0))

    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [["x", "1"], ["yy", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_make_detector_kinds(self):
        constellation = qam(16)
        for kind in ("zf", "mmse", "mmse-sic", "geosphere",
                     "geosphere-zigzag", "eth-sd", "shabany"):
            detector = make_detector(kind, constellation)
            assert hasattr(detector, "detect")
        with pytest.raises(ValueError):
            make_detector("magic", constellation)

    def test_filter_trace_links_keeps_good_links(self):
        trace = load_testbed_trace(4, 4, TINY)
        filtered = filter_trace_links(trace, max_median_lambda_db=20.0)
        assert 1 <= filtered.num_links <= trace.num_links
        filtered_lambdas = filtered.worst_degradations_db()
        all_lambdas = trace.worst_degradations_db()
        assert np.median(filtered_lambdas) <= np.median(all_lambdas)

    def test_filter_trace_links_degenerate_threshold(self):
        trace = load_testbed_trace(4, 4, TINY)
        filtered = filter_trace_links(trace, max_median_lambda_db=-100.0)
        assert filtered.num_links == 1  # fallback keeps the best link


class TestConditioningFigures:
    def test_fig9_shapes_and_anchor(self):
        result = fig09_conditioning.run(TINY)
        assert set(result.values_db) == {(2, 2), (2, 4), (3, 4), (4, 4)}
        # 4x4 worse-conditioned than 2x4 everywhere that matters.
        assert (result.fraction_above_10db((4, 4))
                > result.fraction_above_10db((2, 4)))
        assert "Figure 9" in fig09_conditioning.render(result)

    def test_fig10_shapes_and_anchor(self):
        result = fig10_degradation.run(TINY)
        assert (result.fraction_above_5db((4, 4))
                > result.fraction_above_5db((2, 4)))
        assert result.median_db((2, 4)) < 3.0
        assert "Figure 10" in fig10_degradation.render(result)


class TestThroughputFigures:
    def test_fig11_reduced_grid(self):
        result = fig11_throughput.run(TINY, cases=((4, 4),), snrs_db=(20.0,))
        geo = result.throughput((4, 4), 20.0, "geosphere")
        zf = result.throughput((4, 4), 20.0, "zf")
        assert geo >= zf  # ML never loses to ZF on the same workload
        assert result.gain((4, 4), 20.0) >= 1.0
        assert "Figure 11" in fig11_throughput.render(result)

    def test_fig11_unknown_point_raises(self):
        result = fig11_throughput.run(TINY, cases=((2, 2),), snrs_db=(15.0,))
        with pytest.raises(KeyError):
            result.throughput((9, 9), 15.0, "zf")

    def test_fig12_reduced(self):
        result = fig12_scaling.run(TINY, client_counts=(1, 4))
        assert result.scaling_ratio("geosphere") >= result.scaling_ratio("zf")
        assert "Figure 12" in fig12_scaling.render(result)

    def test_fig13_reduced(self):
        result = fig13_mmse_sic.run(TINY, client_counts=(2, 10))
        geo = result.throughput("geosphere", 10)
        zf = result.throughput("zf", 10)
        sic = result.throughput("mmse-sic", 10)
        assert geo >= sic >= zf * 0.9  # ordering holds (with slack)
        assert geo > zf
        assert "Figure 13" in fig13_mmse_sic.render(result)


class TestComplexityFigures:
    def test_fig14_reduced(self):
        result = fig14_complexity_testbed.run(
            TINY, cases=((2, 4),), snrs_db=(20.0, 25.0))
        for snr in (20.0, 25.0):
            assert result.savings((2, 4), snr) > 0.0
        assert "Figure 14" in fig14_complexity_testbed.render(result)

    def test_fig15_reduced(self):
        result = fig15_complexity_sim.run(
            TINY, cases=((2, 4),), sources=("rayleigh",), orders=(16, 256))
        # ETH-SD grows with constellation size; Geosphere stays flat-ish.
        eth_16 = result.ped_calcs[((2, 4), "rayleigh", 16, "eth-sd")]
        eth_256 = result.ped_calcs[((2, 4), "rayleigh", 256, "eth-sd")]
        geo_16 = result.ped_calcs[((2, 4), "rayleigh", 16, "geosphere")]
        geo_256 = result.ped_calcs[((2, 4), "rayleigh", 256, "geosphere")]
        assert eth_256 > 2.0 * eth_16
        assert geo_256 < 2.0 * geo_16
        assert result.savings_vs_eth((2, 4), "rayleigh", 256) > 0.6
        # Pruning can only remove PED calculations on identical workloads.
        assert result.pruning_gain((2, 4), "rayleigh", 16) >= 0.0
        assert result.pruning_gain((2, 4), "rayleigh", 256) >= 0.0
        assert "Figure 15" in fig15_complexity_sim.render(result)

    def test_fig15_visited_nodes_identical(self):
        result = fig15_complexity_sim.run(
            TINY, cases=((2, 4),), sources=("rayleigh",), orders=(64,))
        visited = [result.visited[((2, 4), "rayleigh", 64, decoder)]
                   for decoder in ("eth-sd", "geosphere-zigzag", "geosphere")]
        assert visited[0] == pytest.approx(visited[1])
        assert visited[1] == pytest.approx(visited[2])


class TestAblations:
    def test_pruning_gains_grow_with_snr(self):
        result = ablation_pruning.run(TINY, cases=((2, 4),), orders=(64,),
                                      targets=(0.10, 0.01))
        assert result.savings((2, 4), 64, 0.01) > 0.0
        assert result.savings((2, 4), 64, 0.10) > 0.0
        assert (result.savings((2, 4), 64, 0.01)
                >= result.savings((2, 4), 64, 0.10) - 0.05)
        assert "pruning" in ablation_pruning.render(result).lower()

    def test_enumeration_costs(self):
        result = ablation_enumeration.run(TINY, orders=(16,))
        # Geosphere <= Shabany <= ETH-SD for the first three children.
        for k in (1, 2, 3):
            geo = result.mean_ped[("geosphere", 16, k)]
            shabany = result.mean_ped[("shabany", 16, k)]
            eth = result.mean_ped[("eth-sd", 16, k)]
            assert geo <= shabany + 1e-9
            assert shabany <= eth + 1e-9
        assert result.mean_ped[("exhaustive", 16, 1)] == pytest.approx(16.0)
        assert "Ablation" in ablation_enumeration.render(result)


class TestTable1:
    def test_summary_contains_three_rows(self):
        result = table1_summary.run(TINY)
        rows = result.rows()
        assert len(rows) == 3
        assert result.share_4x4_poorly_conditioned > 0.8
        assert result.complexity_savings_256qam > 0.5
        rendered = table1_summary.render(result)
        assert "Table 1" in rendered


class TestNewAblations:
    def test_hybrid_ablation(self):
        from repro.experiments import ablation_hybrid
        result = ablation_hybrid.run(TINY)
        assert result.throughput_mbps["hybrid"] <= (
            result.throughput_mbps["geosphere"] * 1.01)
        assert 0.0 <= result.hybrid_sphere_fraction <= 1.0
        assert "hybrid" in ablation_hybrid.render(result)

    def test_breadth_first_ablation(self):
        from repro.experiments import ablation_breadth_first
        result = ablation_breadth_first.run(TINY)
        assert result.error_rate("k-best (K=1)") >= result.error_rate("geosphere")
        assert result.ped("k-best (K=16)") > result.ped("geosphere")
        assert "breadth-first" in ablation_breadth_first.render(result)

    def test_soft_ablation(self):
        from repro.experiments import ablation_soft
        result = ablation_soft.run(TINY, snrs_db=(11.0,))
        assert result.success[(11.0, "soft")] >= result.success[(11.0, "hard")]
        assert result.ped[(11.0, "soft")] > result.ped[(11.0, "hard")]
        assert "soft" in ablation_soft.render(result)

    def test_selection_ablation(self):
        from repro.experiments import ablation_selection
        result = ablation_selection.run(TINY)
        assert result.gain("selected") >= 0.99
        assert result.gain("random") >= 0.99
        assert "selection" in ablation_selection.render(result)
