"""Tests for the OFDM substrate: numerology, modem, estimation."""

import numpy as np
import pytest

from repro.channel import awgn
from repro.constellation import qam
from repro.ofdm import (
    WIFI_20MHZ,
    OfdmParams,
    apply_multipath,
    demodulate,
    estimate_channel,
    estimation_error,
    frequency_response,
    modulate,
    training_grid,
)


class TestParams:
    def test_wifi_numerology(self):
        assert WIFI_20MHZ.num_data_subcarriers == 48
        assert WIFI_20MHZ.symbol_samples == 80
        assert WIFI_20MHZ.symbol_duration_s == pytest.approx(4e-6)
        assert WIFI_20MHZ.subcarrier_spacing_hz == pytest.approx(312_500.0)

    def test_data_and_pilots_disjoint(self):
        data = set(WIFI_20MHZ.data_subcarriers)
        pilots = set(WIFI_20MHZ.pilot_subcarriers)
        assert not data & pilots
        assert len(data) == 48 and len(pilots) == 4

    def test_bin_indices_within_fft(self):
        assert (WIFI_20MHZ.data_bin_indices() < 64).all()
        assert 0 not in WIFI_20MHZ.data_bin_indices()  # DC unused

    def test_frequency_offsets_symmetric(self):
        offsets = WIFI_20MHZ.data_frequency_offsets_hz()
        assert offsets.min() == pytest.approx(-26 * 312_500.0)
        assert offsets.max() == pytest.approx(26 * 312_500.0)

    def test_rejects_overlapping_pilots(self):
        with pytest.raises(ValueError):
            OfdmParams(data_subcarriers=(1, 2, 7), pilot_subcarriers=(7,))

    def test_rejects_long_cp(self):
        with pytest.raises(ValueError):
            OfdmParams(fft_size=64, cp_length=64)


class TestModemLoopback:
    def test_modulate_demodulate_identity(self):
        rng = np.random.default_rng(0)
        constellation = qam(64)
        grid = constellation.points[rng.integers(0, 64, size=(5, 48))]
        data, pilots = demodulate(modulate(grid, WIFI_20MHZ), WIFI_20MHZ)
        assert np.allclose(data, grid, atol=1e-12)
        assert np.allclose(pilots, 1.0, atol=1e-12)

    def test_sample_count(self):
        grid = np.zeros((3, 48), dtype=complex)
        assert modulate(grid, WIFI_20MHZ).size == 3 * 80

    def test_rejects_wrong_subcarrier_count(self):
        with pytest.raises(ValueError):
            modulate(np.zeros((2, 52), dtype=complex), WIFI_20MHZ)

    def test_rejects_partial_symbol_stream(self):
        with pytest.raises(ValueError):
            demodulate(np.zeros(81, dtype=complex), WIFI_20MHZ)


class TestMultipath:
    def make_taps(self, num_rx, num_tx, num_taps, seed=0):
        rng = np.random.default_rng(seed)
        taps = (rng.standard_normal((num_rx, num_tx, num_taps))
                + 1j * rng.standard_normal((num_rx, num_tx, num_taps)))
        # Exponentially decaying power-delay profile.
        taps *= np.exp(-0.5 * np.arange(num_taps))[None, None, :]
        return taps

    def test_single_tap_is_flat_scaling(self):
        rng = np.random.default_rng(1)
        grid = qam(16).points[rng.integers(0, 16, size=(4, 48))]
        samples = modulate(grid, WIFI_20MHZ)
        taps = np.array([[[0.5 - 0.25j]]])
        received = apply_multipath(samples[None, :], taps)
        data, _ = demodulate(received[0], WIFI_20MHZ)
        assert np.allclose(data, grid * (0.5 - 0.25j), atol=1e-12)

    def test_cp_turns_multipath_into_per_subcarrier_gains(self):
        """The core OFDM property: after CP removal, each subcarrier sees
        exactly the channel's frequency response at its bin."""
        rng = np.random.default_rng(2)
        grid = qam(16).points[rng.integers(0, 16, size=(6, 48))]
        samples = modulate(grid, WIFI_20MHZ)
        taps = self.make_taps(1, 1, num_taps=8)
        received = apply_multipath(samples[None, :], taps)
        data, _ = demodulate(received[0], WIFI_20MHZ)
        gains = frequency_response(taps, WIFI_20MHZ)[:, 0, 0]
        # First symbol suffers the convolution transient; check the rest.
        assert np.allclose(data[1:], grid[1:] * gains[None, :], atol=1e-9)

    def test_mimo_multipath_matches_frequency_response(self):
        rng = np.random.default_rng(3)
        num_tx, num_rx = 2, 3
        grids = qam(4).points[rng.integers(0, 4, size=(num_tx, 5, 48))]
        streams = np.stack([modulate(grids[t], WIFI_20MHZ) for t in range(num_tx)])
        taps = self.make_taps(num_rx, num_tx, num_taps=6)
        received = apply_multipath(streams, taps)
        channels = frequency_response(taps, WIFI_20MHZ)  # (48, rx, tx)
        for symbol in range(1, 5):
            rx_grids = np.stack(
                [demodulate(received[r], WIFI_20MHZ)[0][symbol] for r in range(num_rx)],
                axis=1)  # (48, rx)
            sent = grids[:, symbol, :].T  # (48, tx)
            for s in range(48):
                assert np.allclose(rx_grids[s], channels[s] @ sent[s], atol=1e-9)

    def test_delay_spread_beyond_cp_rejected_by_frequency_response(self):
        taps = self.make_taps(1, 1, num_taps=20)
        with pytest.raises(ValueError):
            frequency_response(taps, WIFI_20MHZ)

    def test_rejects_mismatched_stream_count(self):
        with pytest.raises(ValueError):
            apply_multipath(np.zeros((3, 80), dtype=complex),
                            np.zeros((2, 2, 4), dtype=complex))


class TestEstimation:
    def test_recovers_true_channel_noiselessly(self):
        rng = np.random.default_rng(4)
        num_clients, num_rx = 3, 4
        taps = (rng.standard_normal((num_rx, num_clients, 5))
                + 1j * rng.standard_normal((num_rx, num_clients, 5)))
        true = frequency_response(taps, WIFI_20MHZ)  # (48, rx, tx)
        training = training_grid(WIFI_20MHZ, rng=5)
        received = np.empty((num_clients, 48, num_rx), dtype=complex)
        for client in range(num_clients):
            for s in range(48):
                received[client, s] = true[s][:, client] * training[s]
        estimate = estimate_channel(received, training)
        assert estimation_error(estimate, true) < 1e-20

    def test_noise_floor_scales_estimation_error(self):
        rng = np.random.default_rng(6)
        true = (rng.standard_normal((48, 4, 2))
                + 1j * rng.standard_normal((48, 4, 2)))
        training = training_grid(WIFI_20MHZ, rng=7)
        received = np.empty((2, 48, 4), dtype=complex)
        for client in range(2):
            for s in range(48):
                received[client, s] = true[s][:, client] * training[s]
        noisy = received + awgn(received.shape, 0.01, rng=8)
        error = estimation_error(estimate_channel(noisy, training), true)
        assert 0 < error < 0.05

    def test_training_symbols_unit_magnitude(self):
        training = training_grid(WIFI_20MHZ, rng=9)
        assert np.allclose(np.abs(training), 1.0)

    def test_rejects_zero_training(self):
        with pytest.raises(ValueError):
            estimate_channel(np.zeros((1, 48, 2)), np.zeros(48))
