"""Tests for the geometric pruning lower bound (paper section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import awgn, noise_variance_for_snr, rayleigh_channel
from repro.constellation import qam
from repro.sphere import (
    GeometricPruner,
    geosphere_decoder,
    geosphere_zigzag_only,
    lower_bound_sq_table,
)

ORDERS = [4, 16, 64, 256]


class TestLowerBoundTable:
    def test_matches_paper_equation_nine(self):
        """Paper lattice (points two units apart => scale 1):
        c^ = sqrt((2 dI - 1)^2 + (2 dQ - 1)^2)."""
        table = lower_bound_sq_table(4, scale=1.0)
        assert table[2, 2] == pytest.approx((2 * 2 - 1) ** 2 + (2 * 2 - 1) ** 2)
        assert table[1, 3] == pytest.approx(1 + 25)

    def test_zero_offset_contributes_nothing(self):
        table = lower_bound_sq_table(8, scale=1.0)
        assert table[0, 0] == 0.0
        assert table[0, 3] == pytest.approx(25.0)
        assert table[3, 0] == pytest.approx(25.0)

    def test_scales_with_half_spacing(self):
        unit = lower_bound_sq_table(4, scale=1.0)
        scaled = lower_bound_sq_table(4, scale=0.5)
        assert np.allclose(scaled, unit * 0.25)

    def test_monotone_in_both_offsets(self):
        table = lower_bound_sq_table(16, scale=1.0)
        assert (np.diff(table, axis=0) >= 0).all()
        assert (np.diff(table, axis=1) >= 0).all()


@pytest.mark.parametrize("order", ORDERS)
class TestBoundSafety:
    def test_bound_never_exceeds_exact_distance(self, order):
        """For any received point inside the sliced cell and any candidate,
        the table bound is a true lower bound on the exact distance."""
        constellation = qam(order)
        pruner = GeometricPruner(constellation)
        rng = np.random.default_rng(order)
        for _ in range(50):
            received = complex(rng.uniform(-1.4, 1.4), rng.uniform(-1.4, 1.4))
            col0, row0 = constellation.slice_col_row(received)
            col = int(rng.integers(0, constellation.side))
            row = int(rng.integers(0, constellation.side))
            exact = abs(constellation.point(col, row) - received) ** 2
            bound = pruner.lower_bound_sq(abs(col - col0), abs(row - row0))
            assert bound <= exact + 1e-12

    def test_should_prune_respects_budget(self, order):
        pruner = GeometricPruner(qam(order))
        assert not pruner.should_prune(0, 0, budget_sq=1e-6)
        side = qam(order).side
        if side >= 4:
            big = pruner.lower_bound_sq(side - 1, side - 1)
            assert pruner.should_prune(side - 1, side - 1, budget_sq=big * 0.5)


class TestPruningPreservesML:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000),
           order=st.sampled_from([16, 64]),
           snr_db=st.floats(min_value=0.0, max_value=35.0))
    def test_same_solution_with_and_without_pruning(self, seed, order, snr_db):
        constellation = qam(order)
        rng = np.random.default_rng(seed)
        channel = rayleigh_channel(3, 3, rng)
        sent = rng.integers(0, order, size=3)
        noise_variance = noise_variance_for_snr(channel, snr_db)
        y = channel @ constellation.points[sent] + awgn(3, noise_variance, rng)
        pruned = geosphere_decoder(constellation).decode(channel, y)
        plain = geosphere_zigzag_only(constellation).decode(channel, y)
        assert (pruned.symbol_indices == plain.symbol_indices).all()
        assert pruned.distance_sq == pytest.approx(plain.distance_sq)
        assert pruned.counters.visited_nodes == plain.counters.visited_nodes

    def test_pruning_saves_work_at_high_snr(self):
        """Section 5.3 discussion: at high SNR geometric pruning prunes the
        rest of the tree 'without any additional calculation'."""
        constellation = qam(64)
        full = geosphere_decoder(constellation)
        plain = geosphere_zigzag_only(constellation)
        saved = 0
        total_plain = 0
        rng = np.random.default_rng(0)
        for _ in range(30):
            channel = rayleigh_channel(4, 4, rng)
            sent = rng.integers(0, 64, size=4)
            noise_variance = noise_variance_for_snr(channel, 38.0)
            y = channel @ constellation.points[sent] + awgn(4, noise_variance, rng)
            with_pruning = full.decode(channel, y).counters.ped_calcs
            without = plain.decode(channel, y).counters.ped_calcs
            saved += without - with_pruning
            total_plain += without
        assert saved > 0.2 * total_plain  # >20% of PED calcs eliminated
