"""Tests for the extension decoders and soft-processing infrastructure:
K-best, fixed-complexity, hybrid switching, max-log LLRs, soft receive."""

import numpy as np
import pytest

from repro.channel import (
    awgn,
    correlated_rayleigh_channel,
    noise_variance_for_snr,
    rayleigh_channel,
)
from repro.constellation import qam
from repro.detect import (
    ExhaustiveMLDetector,
    HybridDetector,
    max_log_llrs,
)
from repro.detect.llr import axis_bit_partitions
from repro.phy import default_config, encode_stream, random_payloads
from repro.phy.receiver import recover_stream_soft
from repro.sphere import (
    FixedComplexityDecoder,
    KBestDecoder,
    geosphere_decoder,
)


def instance(order, num_tx, num_rx, snr_db, seed):
    rng = np.random.default_rng(seed)
    constellation = qam(order)
    channel = rayleigh_channel(num_rx, num_tx, rng)
    sent = rng.integers(0, order, size=num_tx)
    noise_variance = noise_variance_for_snr(channel, snr_db)
    y = channel @ constellation.points[sent] + awgn(num_rx, noise_variance, rng)
    return constellation, channel, y, sent


class TestKBest:
    def test_large_k_matches_ml(self):
        """With K = |O| the K-best decoder cannot lose the ML path."""
        constellation = qam(4)
        decoder = KBestDecoder(constellation, k=4)
        reference = ExhaustiveMLDetector(constellation)
        for seed in range(10):
            _, channel, y, _ = instance(4, 3, 3, 8.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            assert (result.symbol_indices == expected.symbol_indices).all()

    def test_small_k_loses_ml_sometimes(self):
        """The paper's criticism: speculative K misses the ML solution."""
        constellation = qam(16)
        decoder = KBestDecoder(constellation, k=1)
        reference = ExhaustiveMLDetector(constellation)
        losses = 0
        for seed in range(40):
            _, channel, y, _ = instance(16, 3, 3, 8.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            losses += int((result.symbol_indices != expected.symbol_indices).any())
        assert losses > 0

    def test_error_rate_improves_with_k(self):
        constellation = qam(16)
        errors = {}
        for k in (1, 8):
            decoder = KBestDecoder(constellation, k=k)
            count = 0
            for seed in range(60):
                _, channel, y, sent = instance(16, 3, 3, 14.0, seed)
                result = decoder.decode(channel, y)
                count += int((result.symbol_indices != sent).sum())
            errors[k] = count
        assert errors[8] <= errors[1]

    def test_high_snr_decodes_correctly(self):
        constellation = qam(64)
        decoder = KBestDecoder(constellation, k=8)
        _, channel, y, sent = instance(64, 2, 4, 35.0, seed=5)
        result = decoder.decode(channel, y)
        assert (result.symbol_indices == sent).all()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KBestDecoder(qam(4), k=0)

    def test_counters_populated(self):
        constellation = qam(16)
        decoder = KBestDecoder(constellation, k=4)
        _, channel, y, _ = instance(16, 3, 3, 15.0, seed=1)
        result = decoder.decode(channel, y)
        assert result.counters.ped_calcs > 0
        assert result.counters.leaves >= 1


class TestFixedComplexity:
    def test_zero_full_levels_is_greedy_decision_feedback(self):
        constellation = qam(16)
        decoder = FixedComplexityDecoder(constellation, full_levels=0)
        _, channel, y, sent = instance(16, 3, 4, 35.0, seed=2)
        result = decoder.decode(channel, y)
        assert (result.symbol_indices == sent).all()
        # Exactly one leaf: complexity independent of the channel.
        assert result.counters.leaves == 1

    def test_complexity_is_fixed(self):
        """|O|**p leaves regardless of channel conditioning."""
        constellation = qam(16)
        decoder = FixedComplexityDecoder(constellation, full_levels=1)
        leaf_counts = set()
        for seed in range(5):
            _, channel, y, _ = instance(16, 3, 3, 5.0, seed)
            result = decoder.decode(channel, y)
            leaf_counts.add(result.counters.leaves)
        assert leaf_counts == {16}

    def test_approaches_ml_at_high_snr(self):
        constellation = qam(16)
        decoder = FixedComplexityDecoder(constellation, full_levels=1)
        reference = ExhaustiveMLDetector(constellation)
        agreements = 0
        for seed in range(20):
            _, channel, y, _ = instance(16, 3, 3, 30.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            agreements += int(
                (result.symbol_indices == expected.symbol_indices).all())
        assert agreements >= 18  # asymptotically ML, occasionally not

    def test_can_miss_ml_at_low_snr(self):
        constellation = qam(16)
        decoder = FixedComplexityDecoder(constellation, full_levels=1)
        reference = ExhaustiveMLDetector(constellation)
        misses = 0
        for seed in range(40):
            _, channel, y, _ = instance(16, 4, 4, 6.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            misses += int((result.symbol_indices != expected.symbol_indices).any())
        assert misses > 0

    def test_distance_matches_residual(self):
        constellation = qam(16)
        decoder = FixedComplexityDecoder(constellation, full_levels=2)
        _, channel, y, _ = instance(16, 3, 3, 15.0, seed=3)
        result = decoder.decode(channel, y)
        residual = float(np.sum(np.abs(y - channel @ result.symbols) ** 2))
        assert result.distance_sq == pytest.approx(residual)


class TestHybridDetector:
    def test_tracks_sphere_fraction(self):
        constellation = qam(16)
        hybrid = HybridDetector(constellation, threshold_db=10.0)
        rng = np.random.default_rng(4)
        well = np.eye(4, dtype=complex)
        badly = correlated_rayleigh_channel(4, 4, 0.9, 0.9, rng=5)
        block = (rng.standard_normal((3, 4)) + 1j * rng.standard_normal((3, 4)))
        hybrid.detect_block(well, block, 0.01)
        assert hybrid.sphere_fraction == 0.0
        hybrid.detect_block(badly, block, 0.01)
        assert hybrid.sphere_fraction == pytest.approx(0.5)

    def test_matches_sphere_on_bad_channels(self):
        constellation = qam(16)
        hybrid = HybridDetector(constellation, threshold_db=0.0)  # always sphere
        sphere = geosphere_decoder(constellation)
        _, channel, y, _ = instance(16, 3, 3, 15.0, seed=6)
        expected = sphere.decode(channel, y)
        result = hybrid.detect(channel, y, 0.1)
        assert (result.symbol_indices == expected.symbol_indices).all()

    def test_zero_counters_on_linear_path(self):
        constellation = qam(4)
        hybrid = HybridDetector(constellation, threshold_db=1000.0)  # always ZF
        _, channel, y, _ = instance(4, 2, 2, 20.0, seed=7)
        hybrid.detect_block(channel, y[None, :], 0.1)
        assert hybrid.last_block_counters.ped_calcs == 0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            HybridDetector(qam(4), threshold_db=-1.0)


class TestMaxLogLlrs:
    @pytest.mark.parametrize("order", [4, 16, 64, 256])
    def test_sign_recovers_hard_decision(self, order):
        """Slicing the LLR signs must equal hard demodulation."""
        constellation = qam(order)
        rng = np.random.default_rng(8)
        estimates = (rng.uniform(-1.5, 1.5, 50)
                     + 1j * rng.uniform(-1.5, 1.5, 50))
        llrs = max_log_llrs(estimates, constellation)
        hard_from_llrs = (llrs < 0).astype(np.uint8)
        expected = constellation.hard_demodulate(estimates)
        assert (hard_from_llrs == expected).all()

    def test_on_constellation_points_llrs_are_confident(self):
        constellation = qam(16)
        llrs = max_log_llrs(constellation.points, constellation, noise_scale=0.1)
        bits = constellation.indices_to_bits(np.arange(16))
        assert ((llrs < 0) == bits.astype(bool)).all()
        assert np.abs(llrs).min() > 1.0

    def test_noise_scale_only_scales(self):
        constellation = qam(64)
        estimates = np.array([0.3 - 0.2j, -0.7 + 0.9j])
        a = max_log_llrs(estimates, constellation, noise_scale=1.0)
        b = max_log_llrs(estimates, constellation, noise_scale=0.5)
        assert np.allclose(b, 2.0 * a)

    def test_partition_table_shape(self):
        table = axis_bit_partitions(qam(256))
        assert table.shape == (16, 4)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            max_log_llrs(np.array([]), qam(4))


class TestSoftReceive:
    def test_soft_roundtrip_from_true_symbols(self):
        config = default_config(order=16, payload_bits=300)
        payload = random_payloads(1, config, rng=9)[0]
        frame = encode_stream(payload, config)
        llrs = max_log_llrs(frame.grid.reshape(-1), config.constellation,
                            noise_scale=0.05)
        decision = recover_stream_soft(llrs, frame.num_pad_bits, config)
        assert decision.crc_ok
        assert (decision.payload_bits == payload).all()

    def test_soft_survives_noisy_estimates(self):
        config = default_config(order=16, payload_bits=300)
        rng = np.random.default_rng(10)
        payload = random_payloads(1, config, rng=rng)[0]
        frame = encode_stream(payload, config)
        noisy = frame.grid.reshape(-1) + awgn(frame.symbol_indices.size,
                                              0.02, rng)
        llrs = max_log_llrs(noisy, config.constellation, noise_scale=0.02)
        decision = recover_stream_soft(llrs, frame.num_pad_bits, config)
        assert decision.crc_ok

    def test_soft_beats_hard_at_the_margin(self):
        """At an SNR where hard decisions start failing, soft decisions
        should recover at least as many frames."""
        config = default_config(order=16, payload_bits=300)
        rng = np.random.default_rng(11)
        from repro.phy import recover_stream

        soft_ok = hard_ok = 0
        trials = 12
        for _ in range(trials):
            payload = rng.integers(0, 2, 300).astype(np.uint8)
            frame = encode_stream(payload, config)
            noise = 0.12
            noisy = frame.grid.reshape(-1) + awgn(frame.symbol_indices.size,
                                                  noise, rng)
            llrs = max_log_llrs(noisy, config.constellation, noise_scale=noise)
            soft = recover_stream_soft(llrs, frame.num_pad_bits, config)
            hard_indices = config.constellation.slice_indices(noisy)
            hard = recover_stream(hard_indices.reshape(frame.grid.shape),
                                  frame.num_pad_bits, config)
            soft_ok += int(soft.crc_ok)
            hard_ok += int(hard.crc_ok)
        assert soft_ok >= hard_ok

    def test_rejects_uncoded_config(self):
        config = default_config(order=16, payload_bits=200, coded=False)
        with pytest.raises(ValueError):
            recover_stream_soft(np.zeros(192), 0, config)
