"""Tests for the simulated testbed: geometry, ray tracing, trace statistics."""

import numpy as np
import pytest

from repro.testbed import (
    FloorPlan,
    TestbedLayout,
    Wall,
    default_layout,
    default_office_plan,
    generate_testbed_trace,
    link_channel,
    segment_intersections,
    trace_paths,
    WAVELENGTH_M,
)


class TestFloorPlan:
    def test_default_plan_dimensions(self):
        plan = default_office_plan()
        assert plan.width == 30.0 and plan.height == 15.0
        assert len(plan.walls) >= 10

    def test_contains(self):
        plan = default_office_plan()
        assert plan.contains((1.0, 1.0))
        assert not plan.contains((-1.0, 5.0))
        assert not plan.contains((5.0, 20.0))

    def test_wall_validation(self):
        with pytest.raises(ValueError):
            Wall((0, 0), (0, 0))
        with pytest.raises(ValueError):
            Wall((0, 0), (1, 0), reflection_amplitude=1.5)
        with pytest.raises(ValueError):
            Wall((0, 0), (1, 0), penetration_loss_db=-1.0)

    def test_layout_has_fifteen_nodes(self):
        """The paper's testbed has 15 nodes."""
        assert default_layout().num_nodes == 15

    def test_antenna_array_spacing(self):
        layout = default_layout()
        antennas = layout.ap_antenna_positions(0, 4)
        spacings = np.linalg.norm(np.diff(antennas, axis=0), axis=1)
        assert np.allclose(spacings, 0.20)  # the paper's ~3.2 lambda

    def test_rejects_node_outside_plan(self):
        plan = default_office_plan()
        with pytest.raises(ValueError):
            TestbedLayout(plan=plan, ap_positions=((50.0, 5.0),),
                          ap_orientations_rad=(0.0,),
                          client_positions=((1.0, 1.0), (2.0, 2.0)))


class TestSegmentIntersection:
    def test_crossing_detected(self):
        plan = default_office_plan()
        # From a south office to a north office: crosses both corridor walls.
        crossed = segment_intersections((3.0, 3.0), (3.0, 12.0), plan)
        assert len(crossed) == 2

    def test_same_room_clear(self):
        plan = default_office_plan()
        crossed = segment_intersections((1.0, 1.0), (5.0, 5.0), plan)
        assert crossed == []

    def test_parallel_wall_not_crossed(self):
        plan = default_office_plan()
        crossed = segment_intersections((1.0, 6.5), (5.0, 6.5), plan)
        # Running along the corridor wall is not a crossing.
        assert all(wall.start[1] != 6.5 for wall in crossed)


class TestRayTracing:
    def test_direct_path_always_present(self):
        plan = default_office_plan()
        paths = trace_paths(plan, (3.0, 3.0), (9.0, 4.0), WAVELENGTH_M)
        assert len(paths) >= 1
        # The direct path is the shortest.
        delays = [path.delay_s for path in paths]
        assert delays[0] == min(delays)

    def test_reflections_exist_in_a_room(self):
        plan = default_office_plan()
        paths = trace_paths(plan, (1.5, 1.5), (4.5, 5.0), WAVELENGTH_M)
        assert len(paths) > 3  # direct + several wall bounces

    def test_path_gain_decays_with_distance(self):
        plan = default_office_plan()
        near = trace_paths(plan, (1.0, 1.0), (2.0, 1.0), WAVELENGTH_M)[0]
        far = trace_paths(plan, (1.0, 1.0), (29.0, 1.0), WAVELENGTH_M)[0]
        assert abs(near.gain) > abs(far.gain)

    def test_wall_penetration_attenuates(self):
        plan = default_office_plan()
        same_room = trace_paths(plan, (1.0, 3.0), (5.0, 3.0), WAVELENGTH_M)[0]
        through_wall = trace_paths(plan, (1.0, 3.0), (1.0 + 4.0 * np.cos(0.1), 10.0),
                                   WAVELENGTH_M)[0]
        # Same-ish distance but two drywall crossings => weaker.
        assert abs(through_wall.gain) < abs(same_room.gain)

    def test_delay_matches_geometry(self):
        plan = default_office_plan()
        path = trace_paths(plan, (1.0, 1.0), (4.0, 5.0), WAVELENGTH_M)[0]
        assert path.delay_s == pytest.approx(5.0 / 299_792_458.0)

    def test_rejects_outside_nodes(self):
        plan = default_office_plan()
        with pytest.raises(ValueError):
            trace_paths(plan, (-5.0, 0.0), (1.0, 1.0), WAVELENGTH_M)


class TestLinkChannel:
    def test_shape_and_normalisation(self):
        layout = default_layout()
        channels = link_channel(layout, 0, [0, 1, 2], num_ap_antennas=4)
        assert channels.shape == (48, 4, 3)
        for client in range(3):
            power = np.mean(np.abs(channels[:, :, client]) ** 2)
            assert power == pytest.approx(1.0)

    def test_frequency_selectivity(self):
        layout = default_layout()
        channels = link_channel(layout, 0, [0], num_ap_antennas=2)
        # The channel varies across subcarriers (multipath).
        assert not np.allclose(channels[0], channels[24], atol=1e-3)

    def test_unnormalised_channels_preserve_pathloss(self):
        layout = default_layout()
        near = link_channel(layout, 0, [1], 2, normalize=False)  # client near AP 0
        far = link_channel(layout, 0, [4], 2, normalize=False)   # far east client
        assert np.mean(np.abs(near) ** 2) > np.mean(np.abs(far) ** 2)


class TestTraceGeneration:
    def test_trace_shape_and_determinism(self):
        trace_a = generate_testbed_trace(2, 4, num_links=5, seed=7)
        trace_b = generate_testbed_trace(2, 4, num_links=5, seed=7)
        assert trace_a.matrices.shape == (5, 48, 4, 2)
        assert np.array_equal(trace_a.matrices, trace_b.matrices)

    def test_different_seeds_differ(self):
        trace_a = generate_testbed_trace(2, 4, num_links=5, seed=1)
        trace_b = generate_testbed_trace(2, 4, num_links=5, seed=2)
        assert not np.allclose(trace_a.matrices, trace_b.matrices)

    def test_rejects_more_clients_than_antennas(self):
        with pytest.raises(ValueError):
            generate_testbed_trace(4, 2, num_links=2)

    def test_conditioning_matches_paper_statistics(self):
        """Fig. 9/10 anchors: ~60% of 2x2 links above 10 dB kappa^2; 4x4
        nearly always poorly conditioned; 2 clients x 4 antennas mostly
        well conditioned (<3 dB degradation for ~90%)."""
        two_by_two = generate_testbed_trace(2, 2, num_links=20, seed=1)
        four_by_four = generate_testbed_trace(4, 4, num_links=20, seed=1)
        two_by_four = generate_testbed_trace(2, 4, num_links=20, seed=1)

        k2_2x2 = two_by_two.condition_numbers_sq_db()
        assert 0.4 <= np.mean(k2_2x2 > 10.0) <= 0.8

        k2_4x4 = four_by_four.condition_numbers_sq_db()
        assert np.mean(k2_4x4 > 10.0) > 0.85

        # 2 clients x 4 antennas is by far the best-conditioned case
        # (the paper reports <3 dB for 90% of channels; our ray-traced
        # substitute reaches a ~2 dB median — see DESIGN.md deviations).
        lam_2x4 = two_by_four.worst_degradations_db()
        assert np.median(lam_2x4) < 3.0

        # More clients on the same array => worse conditioning (the
        # monotonicity the paper leans on for user selection).
        lam_4x4 = four_by_four.worst_degradations_db()
        assert np.median(lam_4x4) > 2.0 * np.median(lam_2x4)
