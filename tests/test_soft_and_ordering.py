"""Tests for the list sphere decoder (soft output) and sorted-QR ordering."""

import numpy as np
import pytest

from repro.channel import awgn, noise_variance_for_snr, rayleigh_channel
from repro.constellation import qam
from repro.sphere import (
    ListSphereDecoder,
    SphereDecoder,
    geosphere_decoder,
)
from repro.sphere.qr import sorted_triangularize


def instance(order, num_tx, num_rx, snr_db, seed):
    rng = np.random.default_rng(seed)
    constellation = qam(order)
    channel = rayleigh_channel(num_rx, num_tx, rng)
    sent = rng.integers(0, order, size=num_tx)
    noise_variance = noise_variance_for_snr(channel, snr_db)
    y = channel @ constellation.points[sent] + awgn(num_rx, noise_variance, rng)
    return constellation, channel, y, sent, noise_variance


class TestSortedQr:
    def test_reconstructs_permuted_channel(self):
        channel = rayleigh_channel(4, 3, rng=0)
        q, r, perm = sorted_triangularize(channel)
        assert np.allclose(q @ r, channel[:, perm])

    def test_first_pivot_is_weakest_column(self):
        """SQRD's first pivot (detected last) is the smallest-norm column."""
        channel = rayleigh_channel(4, 4, rng=1)
        _, _, perm = sorted_triangularize(channel)
        norms = np.sum(np.abs(channel) ** 2, axis=0)
        assert perm[0] == int(np.argmin(norms))
        assert sorted(perm.tolist()) == [0, 1, 2, 3]

    def test_ordering_preserves_ml_solution(self):
        constellation = qam(16)
        natural = geosphere_decoder(constellation)
        ordered = SphereDecoder(constellation, column_ordering="norm")
        for seed in range(15):
            _, channel, y, _, _ = instance(16, 4, 4, 14.0, seed)
            a = natural.decode(channel, y)
            b = ordered.decode(channel, y)
            assert (a.symbol_indices == b.symbol_indices).all()
            assert a.distance_sq == pytest.approx(b.distance_sq)

    def test_ordering_reduces_average_complexity(self):
        constellation = qam(16)
        natural = geosphere_decoder(constellation)
        ordered = SphereDecoder(constellation, column_ordering="norm")
        natural_total = ordered_total = 0
        for seed in range(40):
            _, channel, y, _, _ = instance(16, 4, 4, 12.0, seed + 100)
            natural_total += natural.decode(channel, y).counters.ped_calcs
            ordered_total += ordered.decode(channel, y).counters.ped_calcs
        assert ordered_total < natural_total  # SQRD: ~20% fewer on average

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            SphereDecoder(qam(4), column_ordering="magic")


class TestListSphereDecoder:
    def test_best_list_entry_is_ml(self):
        """The hard decision of the list decoder equals exact ML."""
        constellation = qam(16)
        soft = ListSphereDecoder(constellation, list_size=8)
        hard = geosphere_decoder(constellation)
        for seed in range(10):
            _, channel, y, _, noise_variance = instance(16, 3, 3, 12.0, seed)
            soft_result = soft.decode_soft(channel, y, noise_variance)
            hard_result = hard.decode(channel, y)
            assert (soft_result.symbol_indices
                    == hard_result.symbol_indices).all()

    def test_llr_signs_match_ml_bits(self):
        constellation = qam(16)
        soft = ListSphereDecoder(constellation, list_size=8)
        for seed in range(10):
            _, channel, y, _, noise_variance = instance(16, 3, 3, 15.0, seed)
            result = soft.decode_soft(channel, y, noise_variance)
            ml_bits = constellation.indices_to_bits(result.symbol_indices)
            assert ((result.llrs < 0) == ml_bits.astype(bool)).all()

    def test_full_list_matches_exhaustive_max_log(self):
        """With the list covering every hypothesis, LLRs equal brute-force
        max-log values."""
        constellation = qam(4)
        num_tx = 2
        soft = ListSphereDecoder(constellation, list_size=16, clamp=1e9)
        _, channel, y, _, noise_variance = instance(4, num_tx, 2, 8.0, seed=3)
        result = soft.decode_soft(channel, y, noise_variance)
        assert result.list_size_used == 16

        # Brute force: distances of all hypotheses + per-bit minima.
        grids = np.indices((4,) * num_tx).reshape(num_tx, -1)
        candidates = constellation.points[grids]
        distances = np.sum(np.abs(y[:, None] - channel @ candidates) ** 2,
                           axis=0)
        bits = np.stack([
            constellation.indices_to_bits(grids[:, h])
            for h in range(grids.shape[1])
        ])
        for bit in range(bits.shape[1]):
            zero = distances[bits[:, bit] == 0].min()
            one = distances[bits[:, bit] == 1].min()
            expected = (one - zero) / noise_variance
            assert result.llrs[bit] == pytest.approx(expected, rel=1e-9)

    def test_clamp_applies_to_one_sided_bits(self):
        constellation = qam(64)
        soft = ListSphereDecoder(constellation, list_size=2, clamp=5.0)
        _, channel, y, _, noise_variance = instance(64, 2, 4, 30.0, seed=4)
        result = soft.decode_soft(channel, y, noise_variance)
        assert (np.abs(result.llrs) <= 5.0 + 1e-12).all()

    def test_counters_track_search_cost(self):
        constellation = qam(16)
        soft = ListSphereDecoder(constellation, list_size=4)
        _, channel, y, _, noise_variance = instance(16, 3, 3, 15.0, seed=5)
        result = soft.decode_soft(channel, y, noise_variance)
        assert result.counters.ped_calcs > 0
        assert result.counters.leaves >= result.list_size_used

    def test_larger_list_costs_more(self):
        constellation = qam(16)
        small = ListSphereDecoder(constellation, list_size=2)
        large = ListSphereDecoder(constellation, list_size=32)
        small_total = large_total = 0
        for seed in range(10):
            _, channel, y, _, noise_variance = instance(16, 3, 3, 15.0, seed)
            small_total += small.decode_soft(
                channel, y, noise_variance).counters.ped_calcs
            large_total += large.decode_soft(
                channel, y, noise_variance).counters.ped_calcs
        assert large_total > small_total

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), list_size=1)
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), clamp=0.0)
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), enumerator="magic")
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), enumerator="hess")
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), node_budget=0)
        with pytest.raises(ValueError):
            ListSphereDecoder(qam(4), batch_strategy="bogus")
        soft = ListSphereDecoder(qam(4))
        _, channel, y, _, _ = instance(4, 2, 2, 10.0, seed=6)
        with pytest.raises(ValueError):
            soft.decode_soft(channel, y, noise_variance=0.0)

    def test_enumerators_agree_on_lists_and_llrs(self):
        """Every enumerator walks the same tree, so the retained leaf
        lists — and therefore the LLRs and hard decisions — must be
        identical; only the search-effort counters may differ."""
        constellation = qam(16)
        decoders = {
            "zigzag": ListSphereDecoder(constellation, list_size=8),
            "shabany": ListSphereDecoder(constellation, list_size=8,
                                         geometric_pruning=False,
                                         enumerator="shabany"),
            "hess": ListSphereDecoder(constellation, list_size=8,
                                      geometric_pruning=False,
                                      enumerator="hess"),
            "exhaustive": ListSphereDecoder(constellation, list_size=8,
                                            geometric_pruning=False,
                                            enumerator="exhaustive"),
        }
        for seed in range(6):
            _, channel, y, _, noise_variance = instance(16, 3, 3, 13.0, seed)
            results = {name: decoder.decode_soft(channel, y, noise_variance)
                       for name, decoder in decoders.items()}
            reference = results["zigzag"]
            for name, result in results.items():
                assert np.array_equal(result.llrs, reference.llrs), name
                assert np.array_equal(result.symbol_indices,
                                      reference.symbol_indices), name
                assert result.list_size_used == reference.list_size_used

    def test_node_budget_truncates_search(self):
        constellation = qam(16)
        exact = ListSphereDecoder(constellation, list_size=8)
        budgeted = ListSphereDecoder(constellation, list_size=8,
                                     node_budget=25)
        _, channel, y, _, noise_variance = instance(16, 4, 4, 10.0, seed=9)
        full = exact.decode_soft(channel, y, noise_variance)
        cut = budgeted.decode_soft(channel, y, noise_variance)
        assert cut.counters.visited_nodes <= 25
        assert cut.counters.visited_nodes < full.counters.visited_nodes
        assert cut.list_size_used >= 1
        assert (np.abs(cut.llrs) <= budgeted.clamp).all()


class TestSoftChain:
    def test_lsd_llrs_decode_a_coded_stream(self):
        """End to end: list-sphere LLRs -> deinterleave -> soft Viterbi.

        Single-antenna-per-symbol setup so LLR ordering aligns with the
        transmit chain."""
        from repro.phy import default_config, random_payloads, encode_stream
        from repro.phy.receiver import recover_stream_soft

        config = default_config(order=16, payload_bits=184)
        constellation = config.constellation
        rng = np.random.default_rng(7)
        payload = random_payloads(1, config, rng)[0]
        frame = encode_stream(payload, config)
        channel = rayleigh_channel(2, 1, rng)
        noise_variance = noise_variance_for_snr(channel, 22.0)
        soft = ListSphereDecoder(constellation, list_size=8)
        llr_blocks = []
        for symbol in frame.grid.reshape(-1):
            y = channel @ np.array([symbol]) + awgn(2, noise_variance, rng)
            result = soft.decode_soft(channel, y, noise_variance)
            llr_blocks.append(result.llrs)
        llrs = np.concatenate(llr_blocks)
        decision = recover_stream_soft(llrs, frame.num_pad_bits, config)
        assert decision.crc_ok
        assert (decision.payload_bits == payload).all()
