"""Unit and property tests for the PAM axis helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constellation import pam_levels, slice_to_index, zigzag_indices, zigzag_order


class TestPamLevels:
    def test_unit_scale_levels_are_odd_integers(self):
        assert list(pam_levels(4)) == [-3.0, -1.0, 1.0, 3.0]

    def test_levels_spacing_is_twice_scale(self):
        levels = pam_levels(8, scale=0.5)
        assert np.allclose(np.diff(levels), 1.0)

    def test_levels_are_symmetric(self):
        levels = pam_levels(16, scale=0.3)
        assert np.allclose(levels, -levels[::-1])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            pam_levels(3)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            pam_levels(4, scale=0.0)


class TestSlicing:
    def test_exact_levels_slice_to_themselves(self):
        levels = pam_levels(8)
        for k, level in enumerate(levels):
            assert slice_to_index(level, 8) == k

    def test_out_of_range_clips_to_edges(self):
        assert slice_to_index(-100.0, 4) == 0
        assert slice_to_index(+100.0, 4) == 3

    def test_vectorised_slicing(self):
        values = np.array([-3.2, -0.4, 0.4, 2.9])
        assert list(slice_to_index(values, 4)) == [0, 1, 2, 3]

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_slice_is_nearest_level(self, value):
        levels = pam_levels(8)
        index = slice_to_index(value, 8)
        brute = int(np.argmin(np.abs(levels - value)))
        assert np.isclose(abs(levels[index] - value), abs(levels[brute] - value))


class TestZigzag:
    def test_interior_start_alternates_sides(self):
        assert list(zigzag_indices(2, 8, prefer_positive=True)) == [2, 3, 1, 4, 0, 5, 6, 7]

    def test_negative_preference_flips_order(self):
        assert list(zigzag_indices(2, 8, prefer_positive=False)) == [2, 1, 3, 0, 4, 5, 6, 7]

    def test_edge_start_marches_inward(self):
        assert list(zigzag_indices(0, 4, prefer_positive=False)) == [0, 1, 2, 3]
        assert list(zigzag_indices(3, 4, prefer_positive=True)) == [3, 2, 1, 0]

    def test_rejects_out_of_range_start(self):
        with pytest.raises(ValueError):
            list(zigzag_indices(4, 4, prefer_positive=True))

    @given(
        st.integers(min_value=0, max_value=15),
        st.booleans(),
    )
    def test_zigzag_is_permutation(self, start, prefer_positive):
        order = list(zigzag_indices(start, 16, prefer_positive))
        assert sorted(order) == list(range(16))

    @given(st.floats(min_value=-20, max_value=20, allow_nan=False))
    def test_zigzag_order_distances_nondecreasing(self, value):
        levels = pam_levels(16)
        order = zigzag_order(value, 16)
        distances = [abs(levels[k] - value) for k in order]
        assert all(a <= b + 1e-12 for a, b in zip(distances, distances[1:]))

    @given(
        st.integers(min_value=2, max_value=5).map(lambda k: 2 ** k),
        st.floats(min_value=-40, max_value=40, allow_nan=False),
    )
    def test_zigzag_order_covers_all_levels(self, size, value):
        assert sorted(zigzag_order(value, size)) == list(range(size))
