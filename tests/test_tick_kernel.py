"""Differential sweeps for the compiled per-tick kernel (ISSUE-9).

The kernel's contract is run-to-completion with *bit-identical* results:
``tick_strategy="compiled"`` replays the numpy frontier's exact float
program per element (reciprocal-multiply complex division, FMA-matched
interference accumulation, ``rint`` slicing, uncontracted distance
update), so symbol decisions, distances, LLRs and complexity counters
must equal the ``"numpy"`` tick everywhere the knob is wired: the batch
frontier, the hard and soft frame engines, the streaming runtime pools,
``detect_uplink``/``SphereDetector`` and the detector farm.

Numba is optional, so the sweeps run the same kernel functions
*interpreted* via :data:`repro.sphere.tick_kernel.FORCE_PYTHON` — the
code CI compiles is the code tested here — and the fallback tests pin
the no-Numba behaviour: one warning, numpy results, never silence.
"""

import warnings

import numpy as np
import pytest

import repro.sphere.tick_kernel as tick_kernel
from repro.constellation import qam
from repro.detect import SphereDetector
from repro.phy.receiver import detect_uplink
from repro.runtime import UplinkRuntime
from repro.service import DetectorFarm
from repro.sphere import ListSphereDecoder, SphereDecoder, triangularize
from repro.sphere.tick_kernel import (
    COMPILED_ENUMERATORS,
    NUMBA_AVAILABLE,
    default_tick_strategy,
    resolve_tick_strategy,
)

from test_frame_engine import _frame_instance
from test_runtime import _assert_identical, _make_frame, _reference


@pytest.fixture
def force_python(monkeypatch):
    """Resolve ``"compiled"`` to the kernel run interpreted.

    Without Numba the request would fall back to the numpy tick and the
    differential sweeps would compare numpy with itself; this flag runs
    the exact kernel functions CI compiles, just through the
    interpreter.
    """
    monkeypatch.setattr(tick_kernel, "FORCE_PYTHON", True)


def _block_instance(order, num_tx, num_vectors, seed=0):
    """Triangular-domain batch: one R, ``num_vectors`` observations."""
    rng = np.random.default_rng(seed)
    constellation = qam(order)
    channel = (rng.standard_normal((num_tx, num_tx))
               + 1j * rng.standard_normal((num_tx, num_tx))) / np.sqrt(2.0)
    sent = rng.integers(0, order, size=(num_vectors, num_tx))
    noise = (rng.standard_normal((num_vectors, num_tx))
             + 1j * rng.standard_normal((num_vectors, num_tx)))
    received = (constellation.points[sent] @ channel.T + 0.15 * noise)
    q, r = triangularize(channel)
    return r, received @ np.conj(q)


def _assert_batches_equal(got, ref):
    assert np.array_equal(got.found, ref.found)
    assert np.array_equal(got.symbol_indices, ref.symbol_indices)
    assert np.array_equal(got.symbols, ref.symbols)
    assert np.array_equal(got.distances_sq, ref.distances_sq)
    assert got.counters == ref.counters


# ----------------------------------------------------------------------
# Strategy resolution
# ----------------------------------------------------------------------

def test_resolve_explicit_numpy_stays_numpy():
    assert resolve_tick_strategy("numpy", "zigzag") == "numpy"


def test_resolve_compiled_for_compiled_enumerators(force_python):
    for enumerator in COMPILED_ENUMERATORS:
        assert resolve_tick_strategy("compiled", enumerator) == "compiled"


@pytest.mark.parametrize("enumerator", ["hess", "exhaustive"])
def test_resolve_uncompiled_enumerator_degrades(force_python, enumerator):
    assert resolve_tick_strategy("compiled", enumerator) == "numpy"


def test_resolve_trace_degrades_to_numpy(force_python):
    assert resolve_tick_strategy("compiled", "zigzag", trace={}) == "numpy"


def test_resolve_none_defers_to_env(force_python, monkeypatch):
    monkeypatch.delenv("REPRO_TICK_STRATEGY", raising=False)
    assert default_tick_strategy() == "numpy"
    assert resolve_tick_strategy(None, "zigzag") == "numpy"
    monkeypatch.setenv("REPRO_TICK_STRATEGY", "compiled")
    assert default_tick_strategy() == "compiled"
    assert resolve_tick_strategy(None, "zigzag") == "compiled"


def test_resolve_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="unknown tick strategy"):
        resolve_tick_strategy("jit", "zigzag")
    with pytest.raises(ValueError, match="unknown tick strategy"):
        SphereDecoder(qam(16), tick_strategy="jit")
    with pytest.raises(ValueError, match="unknown tick strategy"):
        ListSphereDecoder(qam(16), list_size=4, tick_strategy="jit")


def test_resolve_rejects_unknown_env_value(monkeypatch):
    monkeypatch.setenv("REPRO_TICK_STRATEGY", "turbo")
    with pytest.raises(ValueError, match="REPRO_TICK_STRATEGY"):
        default_tick_strategy()


@pytest.mark.skipif(NUMBA_AVAILABLE,
                    reason="fallback path needs Numba absent")
def test_missing_numba_warns_once_and_falls_back(monkeypatch):
    """Without Numba (and without FORCE_PYTHON) a compiled request
    degrades to numpy with exactly one RuntimeWarning per process."""
    monkeypatch.setattr(tick_kernel, "FORCE_PYTHON", False)
    monkeypatch.setattr(tick_kernel, "_warned", False)
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        assert resolve_tick_strategy("compiled", "zigzag") == "numpy"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_tick_strategy("compiled", "zigzag") == "numpy"


def test_missing_numba_keeps_results_identical(monkeypatch):
    """The fallback is only a speed change: a decode under the degraded
    compiled request equals the numpy tick bit for bit."""
    monkeypatch.setattr(tick_kernel, "FORCE_PYTHON", False)
    monkeypatch.setattr(tick_kernel, "_warned", True)
    if NUMBA_AVAILABLE:  # pragma: no cover - CI kernel job only
        monkeypatch.setattr(tick_kernel, "NUMBA_AVAILABLE", False)
    constellation, channels, received = _frame_instance(16, 4, 4, 6, 3)
    decoder = SphereDecoder(constellation)
    reference = decoder.decode_frame(channels, received,
                                     tick_strategy="numpy")
    degraded = decoder.decode_frame(channels, received,
                                    tick_strategy="compiled")
    _assert_identical(degraded, reference, soft=False)


def test_numpy_fma_probe_matches_fresh_samples():
    """The import-time probe's verdict holds on fresh data: the kernel's
    selected complex-multiply program reproduces numpy's exactly."""
    rng = np.random.default_rng(123)
    a = rng.standard_normal(512) + 1j * rng.standard_normal(512)
    b = rng.standard_normal(512) + 1j * rng.standard_normal(512)
    prod = a * b
    for k in range(512):
        ar, ai = a[k].real, a[k].imag
        br, bi = b[k].real, b[k].imag
        if tick_kernel.NUMPY_FMA:
            re = tick_kernel._fma(ar, br, -(ai * bi))
            im = tick_kernel._fma(ar, bi, ai * br)
        else:
            re = ar * br - ai * bi
            im = ar * bi + ai * br
        assert prod[k].real == re and prod[k].imag == im


# ----------------------------------------------------------------------
# Batch frontier differentials
# ----------------------------------------------------------------------

@pytest.mark.parametrize("enumerator", ["zigzag", "shabany"])
@pytest.mark.parametrize("pruning", [True, False])
@pytest.mark.parametrize("node_budget", [None, 40])
def test_batch_compiled_matches_numpy(force_python, enumerator, pruning,
                                      node_budget):
    r, y_hat = _block_instance(16, 4, 24, seed=3)
    kwargs = dict(enumerator=enumerator, geometric_pruning=pruning,
                  node_budget=node_budget)
    compiled = SphereDecoder(qam(16), tick_strategy="compiled", **kwargs)
    baseline = SphereDecoder(qam(16), tick_strategy="numpy", **kwargs)
    _assert_batches_equal(compiled.decode_batch(r, y_hat),
                          baseline.decode_batch(r, y_hat))


def test_batch_compiled_matches_scalar_loop(force_python):
    """Three-way agreement: kernel == numpy frontier == scalar loop."""
    r, y_hat = _block_instance(4, 4, 16, seed=5)
    compiled = SphereDecoder(qam(4), tick_strategy="compiled")
    loop = SphereDecoder(qam(4), batch_strategy="loop")
    _assert_batches_equal(compiled.decode_batch(r, y_hat),
                          loop.decode_batch(r, y_hat))


# ----------------------------------------------------------------------
# Frame engine differentials (hard and soft)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("enumerator", ["zigzag", "shabany"])
@pytest.mark.parametrize("pruning", [True, False])
@pytest.mark.parametrize("node_budget", [None, 60])
def test_hard_frame_compiled_matches_numpy(force_python, enumerator,
                                           pruning, node_budget):
    constellation, channels, received = _frame_instance(16, 4, 4, 6, 4,
                                                        seed=7)
    decoder = SphereDecoder(constellation, enumerator=enumerator,
                            geometric_pruning=pruning,
                            node_budget=node_budget)
    reference = decoder.decode_frame(channels, received,
                                     tick_strategy="numpy")
    compiled = decoder.decode_frame(channels, received,
                                    tick_strategy="compiled")
    _assert_identical(compiled, reference, soft=False)


@pytest.mark.parametrize("drain_threshold", [0, None])
def test_hard_frame_compiled_across_drain_settings(force_python,
                                                   drain_threshold):
    """The kernel never reaches the straggler drain (searches finish
    inside it), so its results cannot depend on the drain knob — and
    must still equal every numpy drain variant."""
    constellation, channels, received = _frame_instance(16, 4, 4, 8, 3,
                                                        seed=11)
    decoder = SphereDecoder(constellation)
    reference = decoder.decode_frame(channels, received,
                                     drain_threshold=drain_threshold,
                                     tick_strategy="numpy")
    compiled = decoder.decode_frame(channels, received,
                                    drain_threshold=drain_threshold,
                                    tick_strategy="compiled")
    _assert_identical(compiled, reference, soft=False)


@pytest.mark.parametrize("enumerator", ["zigzag", "shabany"])
@pytest.mark.parametrize("list_size", [4, 8])
@pytest.mark.parametrize("node_budget", [None, 80])
def test_soft_frame_compiled_matches_numpy(force_python, enumerator,
                                           list_size, node_budget):
    constellation, channels, received = _frame_instance(16, 4, 4, 5, 3,
                                                        seed=13)
    decoder = ListSphereDecoder(constellation, list_size=list_size,
                                enumerator=enumerator,
                                node_budget=node_budget)
    reference = decoder.decode_frame(channels, received, 0.05,
                                     tick_strategy="numpy")
    compiled = decoder.decode_frame(channels, received, 0.05,
                                    tick_strategy="compiled")
    _assert_identical(compiled, reference, soft=True)


def test_uncompiled_enumerator_frame_request_degrades(force_python):
    """A compiled request with ``hess`` silently takes the numpy tick —
    same results, no warning (the degradation is by design)."""
    constellation, channels, received = _frame_instance(16, 4, 4, 5, 3,
                                                        seed=17)
    decoder = SphereDecoder(constellation, enumerator="hess",
                            geometric_pruning=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        compiled = decoder.decode_frame(channels, received,
                                        tick_strategy="compiled")
    reference = decoder.decode_frame(channels, received,
                                     tick_strategy="numpy")
    _assert_identical(compiled, reference, soft=False)


def test_decoder_attribute_strategy_threads_through(force_python):
    """``tick_strategy`` set at construction governs ``decode_frame``
    with no per-call override, and the per-call knob wins over it."""
    constellation, channels, received = _frame_instance(16, 4, 4, 5, 3,
                                                        seed=19)
    compiled = SphereDecoder(constellation, tick_strategy="compiled")
    baseline = SphereDecoder(constellation)
    reference = baseline.decode_frame(channels, received)
    _assert_identical(compiled.decode_frame(channels, received),
                      reference, soft=False)
    _assert_identical(compiled.decode_frame(channels, received,
                                            tick_strategy="numpy"),
                      reference, soft=False)


# ----------------------------------------------------------------------
# Streaming runtime differentials
# ----------------------------------------------------------------------

def test_runtime_compiled_matches_decode_frame(force_python):
    """Mixed hard/soft stream through one compiled-mode runtime: every
    frame equals standalone ``decode_frame``, counters included, and
    the tick telemetry attributes the work to the kernel."""
    rng = np.random.default_rng(23)
    decoders = [
        (SphereDecoder(qam(16)), False),
        (SphereDecoder(qam(4), enumerator="shabany"), False),
        (ListSphereDecoder(qam(16), list_size=4), True),
    ]
    frames = [_make_frame(decoder, 6, 3, 18.0, rng, soft=soft)
              for decoder, soft in decoders for _ in range(2)]
    references = [_reference(frame) for frame in frames]

    runtime = UplinkRuntime(tick_strategy="compiled")
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for handle, frame, reference in zip(handles, frames, references):
        _assert_identical(handle.result(), reference,
                          soft=frame.noise_variance is not None)
    assert runtime.stats.kernel_time_fraction() > 0.5


def test_runtime_compiled_honours_node_budget(force_python):
    """Budgeted searches stop at the same node inside the kernel as at
    the numpy tick boundary (the loop-top check is the same check)."""
    rng = np.random.default_rng(29)
    decoder = SphereDecoder(qam(16), node_budget=50)
    frames = [_make_frame(decoder, 6, 3, 16.0, rng) for _ in range(3)]
    references = [_reference(frame) for frame in frames]
    runtime = UplinkRuntime(tick_strategy="compiled")
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for handle, reference in zip(handles, references):
        _assert_identical(handle.result(), reference, soft=False)


def test_runtime_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="unknown tick strategy"):
        UplinkRuntime(tick_strategy="jit")


# ----------------------------------------------------------------------
# Receiver, adapter and farm plumbing
# ----------------------------------------------------------------------

def test_detect_uplink_compiled_matches_numpy(force_python):
    constellation, channels, received = _frame_instance(16, 4, 4, 6, 3,
                                                        seed=31)
    detector = SphereDetector(SphereDecoder(constellation))
    reference = detect_uplink(channels, received, detector, 0.05,
                              tick_strategy="numpy")
    compiled = detect_uplink(channels, received, detector, 0.05,
                             tick_strategy="compiled")
    assert np.array_equal(compiled.symbol_indices,
                          reference.symbol_indices)
    assert compiled.counters == reference.counters


def test_farm_compiled_matches_decode_frame(force_python):
    rng = np.random.default_rng(37)
    decoders = [
        (SphereDecoder(qam(16)), False),
        (ListSphereDecoder(qam(4), list_size=4), True),
    ]
    frames = [_make_frame(decoder, 6, 3, 18.0, rng, soft=soft)
              for decoder, soft in decoders for _ in range(2)]
    references = [_reference(frame) for frame in frames]
    with DetectorFarm(2, backend="inline",
                      tick_strategy="compiled") as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.drain()
    for handle, frame, reference in zip(handles, frames, references):
        _assert_identical(handle.result(), reference,
                          soft=frame.noise_variance is not None)


def test_farm_rejects_conflicting_strategy():
    with pytest.raises(ValueError, match="tick_strategy given twice"):
        DetectorFarm(1, backend="inline", tick_strategy="compiled",
                     runtime_kwargs={"tick_strategy": "numpy"})
    with pytest.raises(ValueError, match="unknown tick strategy"):
        DetectorFarm(1, backend="inline", tick_strategy="jit")
