"""Tests for Rayleigh, correlated and geometric channel models."""

import numpy as np
import pytest

from repro.channel import (
    GeometricChannelModel,
    Path,
    RayleighChannelModel,
    channel_from_paths,
    condition_number_sq_db,
    correlated_rayleigh_channel,
    exponential_correlation,
    rayleigh_channel,
    rayleigh_channels,
    steering_vector,
)


class TestRayleigh:
    def test_unit_average_power(self):
        channels = rayleigh_channels(2000, 4, 4, rng=0)
        assert np.mean(np.abs(channels) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_shapes(self):
        assert rayleigh_channel(4, 2, rng=0).shape == (4, 2)
        assert rayleigh_channels(7, 3, 2, rng=0).shape == (7, 3, 2)

    def test_model_interface(self):
        model = RayleighChannelModel(4, 2, rng=0)
        assert model.next_channel().shape == (4, 2)
        assert model.next_frequency_selective(48).shape == (48, 4, 2)

    def test_model_rejects_more_clients_than_antennas(self):
        with pytest.raises(ValueError):
            RayleighChannelModel(2, 4)

    def test_independent_draws_differ(self):
        model = RayleighChannelModel(2, 2, rng=0)
        assert not np.allclose(model.next_channel(), model.next_channel())

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            rayleigh_channels(0, 2, 2)


class TestCorrelated:
    def test_identity_when_uncorrelated(self):
        assert np.allclose(exponential_correlation(4, 0.0), np.eye(4))

    def test_exponential_structure(self):
        matrix = exponential_correlation(3, 0.5)
        assert matrix[0, 2] == pytest.approx(0.25)
        assert matrix[1, 0] == pytest.approx(0.5)

    def test_high_correlation_raises_condition_number(self):
        rng = np.random.default_rng(0)
        low = np.median([
            condition_number_sq_db(correlated_rayleigh_channel(4, 4, 0.0, 0.0, rng))
            for _ in range(50)
        ])
        high = np.median([
            condition_number_sq_db(correlated_rayleigh_channel(4, 4, 0.95, 0.95, rng))
            for _ in range(50)
        ])
        assert high > low + 10.0

    def test_rejects_out_of_range_coefficient(self):
        with pytest.raises(ValueError):
            exponential_correlation(4, 1.0)


class TestSteeringVector:
    def test_unit_magnitude_elements(self):
        vector = steering_vector(0.3, 8, 0.5)
        assert np.allclose(np.abs(vector), 1.0)

    def test_broadside_is_all_ones(self):
        assert np.allclose(steering_vector(0.0, 4, 0.5), 1.0)

    def test_distinct_angles_give_distinct_vectors(self):
        a = steering_vector(0.1, 4, 0.5)
        b = steering_vector(0.5, 4, 0.5)
        assert not np.allclose(a, b)


class TestChannelFromPaths:
    def test_single_path_column_is_scaled_steering_vector(self):
        path = Path(gain=2.0 + 0j, aoa_rad=0.2)
        matrix = channel_from_paths([[path]], num_antennas=4, spacing_wavelengths=0.5)
        expected = 2.0 * steering_vector(0.2, 4, 0.5)
        assert np.allclose(matrix[:, 0], expected)

    def test_frequency_selectivity_from_delay(self):
        paths = [[Path(gain=1.0, aoa_rad=0.0, delay_s=0.0),
                  Path(gain=1.0, aoa_rad=0.3, delay_s=100e-9)]]
        offsets = np.array([0.0, 5e6])
        matrices = channel_from_paths(paths, 2, 0.5, frequency_offsets_hz=offsets)
        assert matrices.shape == (2, 2, 1)
        assert not np.allclose(matrices[0], matrices[1])

    def test_zero_delay_is_frequency_flat(self):
        paths = [[Path(gain=1.0, aoa_rad=0.1)]]
        offsets = np.array([0.0, 1e7])
        matrices = channel_from_paths(paths, 2, 0.5, frequency_offsets_hz=offsets)
        assert np.allclose(matrices[0], matrices[1])

    def test_rejects_client_with_no_paths(self):
        with pytest.raises(ValueError):
            channel_from_paths([[]], 2, 0.5)


class TestGeometricModel:
    def test_small_spread_is_poorly_conditioned(self):
        """The Fig. 2 effect: clustered paths => ill-conditioned channels."""
        narrow_model = GeometricChannelModel(4, rng=0)
        wide_model = GeometricChannelModel(4, rng=1)
        narrow = np.median([
            condition_number_sq_db(narrow_model.sample(4, angular_spread_deg=1.0))
            for _ in range(40)
        ])
        wide = np.median([
            condition_number_sq_db(wide_model.sample(4, angular_spread_deg=40.0))
            for _ in range(40)
        ])
        assert narrow > wide

    def test_columns_have_unit_average_power(self):
        model = GeometricChannelModel(4, rng=0)
        channel = model.sample(3, angular_spread_deg=10.0)
        column_power = np.sum(np.abs(channel) ** 2, axis=0) / 4
        assert np.allclose(column_power, 1.0)

    def test_shape(self):
        model = GeometricChannelModel(6, rng=0)
        assert model.sample(2, 5.0).shape == (6, 2)

    def test_rejects_negative_spread(self):
        with pytest.raises(ValueError):
            GeometricChannelModel(4, rng=0).sample(2, -1.0)
