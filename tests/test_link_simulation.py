"""Integration tests: full uplink link simulation over fading channels."""

import numpy as np
import pytest

from repro.channel import correlated_rayleigh_channel
from repro.constellation import qam
from repro.detect import MmseSicDetector, SphereDetector, ZeroForcingDetector
from repro.phy import (
    LinkSimulator,
    default_config,
    fixed_source,
    phy_rate_bps,
    rayleigh_source,
    simulate_frame,
    trace_source,
)
from repro.channel import ChannelTrace, rayleigh_channels
from repro.sphere import geosphere_decoder


def geosphere(constellation):
    return SphereDetector(geosphere_decoder(constellation))


class TestSimulateFrame:
    def test_high_snr_frame_succeeds(self):
        config = default_config(order=16, payload_bits=200)
        rng = np.random.default_rng(0)
        channel = rayleigh_source(4, 2, rng)()
        outcome = simulate_frame(channel, geosphere(config.constellation),
                                 config, snr_db=35.0, rng=rng)
        assert outcome.stream_success.all()
        assert outcome.counters is not None
        assert outcome.detections == outcome.num_ofdm_symbols * 48

    def test_very_low_snr_frame_fails(self):
        config = default_config(order=64, payload_bits=200)
        rng = np.random.default_rng(1)
        channel = rayleigh_source(2, 2, rng)()
        outcome = simulate_frame(channel, ZeroForcingDetector(config.constellation),
                                 config, snr_db=-10.0, rng=rng)
        assert not outcome.stream_success.any()

    def test_linear_detector_has_no_counters(self):
        config = default_config(order=4, payload_bits=100)
        rng = np.random.default_rng(2)
        channel = rayleigh_source(2, 2, rng)()
        outcome = simulate_frame(channel, ZeroForcingDetector(config.constellation),
                                 config, snr_db=20.0, rng=rng)
        assert outcome.counters is None

    def test_per_subcarrier_channels_accepted(self):
        config = default_config(order=4, payload_bits=100)
        rng = np.random.default_rng(3)
        matrices = rayleigh_channels(48, 4, 2, rng)
        outcome = simulate_frame(matrices, geosphere(config.constellation),
                                 config, snr_db=30.0, rng=rng)
        assert outcome.stream_success.all()

    def test_rejects_wrong_subcarrier_count(self):
        config = default_config(order=4, payload_bits=100)
        matrices = rayleigh_channels(32, 4, 2, rng=0)
        with pytest.raises(ValueError):
            simulate_frame(matrices, geosphere(config.constellation),
                           config, snr_db=20.0, rng=0)

    def test_rejects_more_clients_than_antennas(self):
        config = default_config(order=4, payload_bits=100)
        matrices = rayleigh_channels(48, 2, 4, rng=0)
        with pytest.raises(ValueError):
            simulate_frame(matrices, geosphere(config.constellation),
                           config, snr_db=20.0, rng=0)


class TestLinkSimulator:
    def test_throughput_approaches_phy_rate_at_high_snr(self):
        config = default_config(order=16, payload_bits=400)
        simulator = LinkSimulator(geosphere(config.constellation), config,
                                  snr_db=35.0)
        stats = simulator.run(rayleigh_source(4, 2, rng=4), num_frames=5, rng=5)
        assert stats.frame_error_rate == 0.0
        # Net throughput is below PHY rate only because of CRC and padding.
        rate = phy_rate_bps(config, 2)
        assert 0.75 * rate < stats.throughput_bps <= rate

    def test_geosphere_beats_zf_on_ill_conditioned_channel(self):
        """The paper's central claim at link level: on a channel whose
        worst-stream ZF degradation is ~12 dB, the ML detector delivers
        frames zero-forcing cannot."""
        config = default_config(order=16, payload_bits=300)
        channel = correlated_rayleigh_channel(4, 4, 0.75, 0.75, rng=9)
        source = fixed_source(channel)
        zf = LinkSimulator(ZeroForcingDetector(config.constellation), config, 20.0)
        geo = LinkSimulator(geosphere(config.constellation), config, 20.0)
        zf_stats = zf.run(source, num_frames=6, rng=6)
        geo_stats = geo.run(source, num_frames=6, rng=6)
        assert geo_stats.throughput_bps > 2.0 * zf_stats.throughput_bps

    def test_counter_aggregation(self):
        config = default_config(order=16, payload_bits=200)
        simulator = LinkSimulator(geosphere(config.constellation), config, 25.0)
        stats = simulator.run(rayleigh_source(4, 4, rng=7), num_frames=3, rng=8)
        assert stats.has_counters
        assert stats.avg_ped_calcs_per_detection > 0
        assert stats.avg_visited_nodes_per_detection >= 4.0  # >= one path

    def test_overhead_symbols_reduce_throughput(self):
        config = default_config(order=16, payload_bits=400)
        lean = LinkSimulator(geosphere(config.constellation), config, 35.0)
        heavy = LinkSimulator(geosphere(config.constellation), config, 35.0,
                              overhead_symbols=4)
        lean_stats = lean.run(rayleigh_source(4, 2, rng=9), 3, rng=10)
        heavy_stats = heavy.run(rayleigh_source(4, 2, rng=9), 3, rng=10)
        assert heavy_stats.throughput_bps < lean_stats.throughput_bps

    def test_trace_source_cycles_links(self):
        matrices = rayleigh_channels(5 * 48, 4, 2, rng=12).reshape(5, 48, 4, 2)
        trace = ChannelTrace(matrices=matrices, label="unit")
        source = trace_source(trace, rng=13)
        shapes = {source().shape for _ in range(4)}
        assert shapes == {(48, 4, 2)}

    def test_trace_source_client_subset(self):
        matrices = rayleigh_channels(3 * 48, 4, 4, rng=14).reshape(3, 48, 4, 4)
        trace = ChannelTrace(matrices=matrices, label="unit")
        source = trace_source(trace, rng=15, num_clients=2)
        assert source().shape == (48, 4, 2)


class TestDetectorConsistency:
    def test_detect_block_matches_detect(self):
        """Block detection must agree with one-shot detection for every
        detector (same channel, same observations)."""
        constellation = qam(16)
        rng = np.random.default_rng(16)
        channel = rayleigh_channels(1, 4, 3, rng)[0]
        block = (rng.standard_normal((6, 4)) + 1j * rng.standard_normal((6, 4)))
        detectors = [
            ZeroForcingDetector(constellation),
            MmseSicDetector(constellation),
            geosphere(constellation),
        ]
        for detector in detectors:
            batch = detector.detect_block(channel, block, 0.1)
            for t in range(block.shape[0]):
                single = detector.detect(channel, block[t], 0.1)
                assert (batch[t] == single.symbol_indices).all(), detector.name
