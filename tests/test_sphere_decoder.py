"""Tests for the depth-first sphere decoder engine.

The central properties: every enumerator configuration returns the exact
maximum-likelihood solution, all of them traverse the identical tree
(the paper's Fig. 15 note), and geometric pruning only ever removes
computation — never correctness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import awgn, noise_variance_for_snr, rayleigh_channel
from repro.constellation import qam
from repro.detect import ExhaustiveMLDetector
from repro.sphere import (
    SphereDecoder,
    eth_sd_decoder,
    exhaustive_se_decoder,
    geosphere_decoder,
    geosphere_zigzag_only,
    shabany_decoder,
    triangularize,
)

ALL_FACTORIES = [
    geosphere_decoder,
    geosphere_zigzag_only,
    eth_sd_decoder,
    shabany_decoder,
    exhaustive_se_decoder,
]

# (order, streams) pairs small enough for brute-force ML verification.
VERIFIABLE_CASES = [(4, 2), (4, 3), (4, 4), (16, 2), (16, 3), (64, 2)]


def random_instance(order, num_tx, num_rx, snr_db, seed):
    """One random MIMO transmission: returns (H, y, sent_indices, N0)."""
    rng = np.random.default_rng(seed)
    constellation = qam(order)
    channel = rayleigh_channel(num_rx, num_tx, rng)
    sent = rng.integers(0, order, size=num_tx)
    x = constellation.points[sent]
    noise_variance = noise_variance_for_snr(channel, snr_db)
    y = channel @ x + awgn(num_rx, noise_variance, rng)
    return channel, y, sent, noise_variance


class TestMaximumLikelihoodEquivalence:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    @pytest.mark.parametrize("order,num_tx", VERIFIABLE_CASES)
    def test_matches_exhaustive_ml(self, factory, order, num_tx):
        constellation = qam(order)
        reference = ExhaustiveMLDetector(constellation)
        decoder = factory(constellation)
        for seed in range(8):
            channel, y, _, _ = random_instance(order, num_tx, num_tx, 12.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            assert result.found
            assert (result.symbol_indices == expected.symbol_indices).all()

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_more_rx_than_tx(self, factory):
        constellation = qam(16)
        reference = ExhaustiveMLDetector(constellation)
        decoder = factory(constellation)
        for seed in range(5):
            channel, y, _, _ = random_instance(16, 2, 4, 15.0, seed)
            expected = reference.detect(channel, y)
            result = decoder.decode(channel, y)
            assert (result.symbol_indices == expected.symbol_indices).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           snr_db=st.floats(min_value=-5.0, max_value=35.0),
           case=st.sampled_from(VERIFIABLE_CASES))
    def test_ml_property_across_snr(self, seed, snr_db, case):
        """Geosphere returns the ML solution at any SNR, including regimes
        where the first greedy leaf is wrong."""
        order, num_tx = case
        constellation = qam(order)
        channel, y, _, _ = random_instance(order, num_tx, num_tx, snr_db, seed)
        expected = ExhaustiveMLDetector(constellation).detect(channel, y)
        result = geosphere_decoder(constellation).decode(channel, y)
        assert (result.symbol_indices == expected.symbol_indices).all()

    def test_noiseless_decodes_exactly(self):
        constellation = qam(64)
        rng = np.random.default_rng(7)
        channel = rayleigh_channel(4, 4, rng)
        sent = rng.integers(0, 64, size=4)
        y = channel @ constellation.points[sent]
        result = geosphere_decoder(constellation).decode(channel, y)
        assert (result.symbol_indices == sent).all()
        assert result.distance_sq == pytest.approx(0.0, abs=1e-18)


class TestReportedDistance:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_distance_matches_triangular_residual(self, factory):
        constellation = qam(16)
        channel, y, _, _ = random_instance(16, 3, 3, 10.0, seed=3)
        result = factory(constellation).decode(channel, y)
        q, r = triangularize(channel)
        residual = q.conj().T @ y - r @ result.symbols
        assert result.distance_sq == pytest.approx(float(np.sum(np.abs(residual) ** 2)))

    def test_distance_consistent_with_full_residual(self):
        """||y - Hs||^2 = ||y^ - Rs||^2 + const(y); the constant is the
        energy outside the column space and vanishes when na == nc."""
        constellation = qam(16)
        channel, y, _, _ = random_instance(16, 3, 3, 10.0, seed=4)
        result = geosphere_decoder(constellation).decode(channel, y)
        direct = float(np.sum(np.abs(y - channel @ result.symbols) ** 2))
        assert result.distance_sq == pytest.approx(direct)


class TestTraversalParity:
    """Fig. 15 caption: 'each of the above sphere decoders visit the same
    number of nodes'."""

    @pytest.mark.parametrize("order,num_tx", [(16, 4), (64, 3), (256, 2)])
    def test_visited_nodes_identical_across_enumerators(self, order, num_tx):
        constellation = qam(order)
        decoders = [factory(constellation) for factory in ALL_FACTORIES]
        for seed in range(6):
            channel, y, _, _ = random_instance(order, num_tx, 4, 18.0, seed)
            visited = [d.decode(channel, y).counters.visited_nodes for d in decoders]
            assert len(set(visited)) == 1, f"visited nodes diverge: {visited}"

    def test_leaf_counts_identical(self):
        constellation = qam(16)
        decoders = [factory(constellation) for factory in ALL_FACTORIES]
        for seed in range(6):
            channel, y, _, _ = random_instance(16, 4, 4, 10.0, seed)
            leaves = [d.decode(channel, y).counters.leaves for d in decoders]
            assert len(set(leaves)) == 1


class TestComplexityAccounting:
    def test_pruning_never_increases_ped_calcs(self):
        constellation = qam(64)
        full = geosphere_decoder(constellation)
        plain = geosphere_zigzag_only(constellation)
        for seed in range(10):
            channel, y, _, _ = random_instance(64, 4, 4, 20.0, seed)
            with_pruning = full.decode(channel, y).counters
            without = plain.decode(channel, y).counters
            assert with_pruning.ped_calcs <= without.ped_calcs
            assert (with_pruning.ped_calcs + with_pruning.geometric_prunes
                    >= without.ped_calcs * 0 + with_pruning.ped_calcs)

    def test_geosphere_beats_eth_sd_on_dense_constellations(self):
        """The Fig. 15 headline: at 256-QAM the ETH-SD up-front row scan
        dominates and Geosphere computes far fewer distances."""
        constellation = qam(256)
        geo = geosphere_decoder(constellation)
        eth = eth_sd_decoder(constellation)
        geo_total, eth_total = 0, 0
        for seed in range(10):
            channel, y, _, _ = random_instance(256, 2, 4, 30.0, seed)
            geo_total += geo.decode(channel, y).counters.ped_calcs
            eth_total += eth.decode(channel, y).counters.ped_calcs
        assert geo_total < 0.5 * eth_total

    def test_counters_have_sane_minimums(self):
        constellation = qam(16)
        channel, y, _, _ = random_instance(16, 4, 4, 25.0, seed=0)
        counters = geosphere_decoder(constellation).decode(channel, y).counters
        assert counters.leaves >= 1
        assert counters.visited_nodes >= 4      # at least one root-to-leaf path
        assert counters.expanded_nodes >= 4
        assert counters.ped_calcs >= 4
        assert counters.complex_mults == counters.ped_calcs * 5

    def test_merge_and_copy(self):
        constellation = qam(16)
        channel, y, _, _ = random_instance(16, 2, 2, 15.0, seed=1)
        first = geosphere_decoder(constellation).decode(channel, y).counters
        snapshot = first.copy()
        second = geosphere_decoder(constellation).decode(channel, y).counters
        first.merge(second)
        assert first.ped_calcs == snapshot.ped_calcs + second.ped_calcs
        assert snapshot.ped_calcs != first.ped_calcs


class TestEdgeCases:
    def test_single_stream(self):
        constellation = qam(16)
        channel, y, sent, _ = random_instance(16, 1, 2, 25.0, seed=2)
        result = geosphere_decoder(constellation).decode(channel, y)
        assert (result.symbol_indices == sent).all()

    def test_finite_radius_can_exclude_everything(self):
        constellation = qam(4)
        decoder = SphereDecoder(constellation, initial_radius_sq=1e-12)
        channel, y, _, _ = random_instance(4, 2, 2, 5.0, seed=3)
        result = decoder.decode(channel, y)
        assert not result.found
        assert not np.isfinite(result.distance_sq)

    def test_rank_deficient_channel_raises(self):
        constellation = qam(4)
        channel = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        with pytest.raises(ValueError, match="rank deficient"):
            geosphere_decoder(constellation).decode(channel, np.array([1.0, 1.0 + 0j]))

    def test_wide_channel_raises(self):
        constellation = qam(4)
        channel = rayleigh_channel(2, 4, rng=0)
        with pytest.raises(ValueError):
            geosphere_decoder(constellation).decode(channel, np.zeros(2, dtype=complex))

    def test_mismatched_observation_raises(self):
        constellation = qam(4)
        channel = rayleigh_channel(4, 2, rng=0)
        with pytest.raises(ValueError):
            geosphere_decoder(constellation).decode(channel, np.zeros(3, dtype=complex))

    def test_unknown_enumerator_rejected(self):
        with pytest.raises(ValueError):
            SphereDecoder(qam(4), enumerator="magic")

    def test_pruning_rejected_for_hess(self):
        with pytest.raises(ValueError):
            SphereDecoder(qam(4), enumerator="hess", geometric_pruning=True)


class TestQrTriangularisation:
    def test_reconstruction(self):
        channel = rayleigh_channel(4, 3, rng=5)
        q, r = triangularize(channel)
        assert np.allclose(q @ r, channel)

    def test_diagonal_real_positive(self):
        for seed in range(5):
            q, r = triangularize(rayleigh_channel(4, 4, rng=seed))
            diagonal = np.diag(r)
            assert np.allclose(diagonal.imag, 0.0)
            assert (diagonal.real > 0).all()

    def test_q_columns_orthonormal(self):
        q, r = triangularize(rayleigh_channel(6, 3, rng=6))
        assert np.allclose(q.conj().T @ q, np.eye(3), atol=1e-12)

    def test_strictly_upper_triangular_below_diagonal(self):
        _, r = triangularize(rayleigh_channel(4, 4, rng=7))
        assert np.allclose(np.tril(r, k=-1), 0.0)
