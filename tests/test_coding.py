"""Tests for the convolutional code, Viterbi decoder, interleaver,
scrambler and CRC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    VITERBI_STRATEGIES,
    WIFI_CODE,
    ConvolutionalCode,
    append_crc,
    check_crc,
    crc32_bits,
    deinterleave,
    descramble,
    interleave,
    interleaver_permutation,
    scramble,
    scrambler_sequence,
    viterbi_decode,
    viterbi_decode_batch,
    viterbi_decode_soft,
    viterbi_decode_soft_batch,
)
from repro.phy import default_config, encode_stream, recover_stream
from repro.phy.receiver import stream_coded_bits

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=200)

#: Codes the batched-vs-scalar sweeps cover: the standard WiFi code, a
#: short K=3 code, and a K=5 rate-1/3 code (three outputs per step) so
#: the pattern-cost gather is exercised beyond two outputs.
SWEEP_CODES = [
    WIFI_CODE,
    ConvolutionalCode(constraint_length=3, polynomials=(0o7, 0o5)),
    ConvolutionalCode(constraint_length=5, polynomials=(0o27, 0o31, 0o25)),
]


class TestEncoder:
    def test_rate_and_termination_length(self):
        bits = np.zeros(100, dtype=np.uint8)
        coded = WIFI_CODE.encode(bits)
        assert coded.size == (100 + 6) * 2
        assert WIFI_CODE.coded_length(100) == coded.size

    def test_all_zeros_encode_to_all_zeros(self):
        coded = WIFI_CODE.encode(np.zeros(40, dtype=np.uint8))
        assert not coded.any()

    def test_known_impulse_response(self):
        """A single 1 produces the generator polynomials as output."""
        coded = WIFI_CODE.encode(np.array([1], dtype=np.uint8))
        g0 = coded[0::2]
        g1 = coded[1::2]
        assert list(g0) == [(0o133 >> shift) & 1 for shift in range(6, -1, -1)]
        assert list(g1) == [(0o171 >> shift) & 1 for shift in range(6, -1, -1)]

    def test_linearity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        assert (WIFI_CODE.encode(a ^ b) == (WIFI_CODE.encode(a) ^ WIFI_CODE.encode(b))).all()

    def test_rejects_invalid_polynomial(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, polynomials=(0o17, 0o5))

    def test_custom_code_trellis_shapes(self):
        code = ConvolutionalCode(constraint_length=3, polynomials=(0o7, 0o5))
        assert code.num_states == 4
        assert code.trellis_outputs().shape == (4, 2, 2)
        assert code.next_states().shape == (4, 2)


class TestViterbiHard:
    def test_noiseless_roundtrip(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        assert (viterbi_decode(WIFI_CODE.encode(bits), WIFI_CODE) == bits).all()

    @pytest.mark.parametrize("num_errors", [1, 2, 3])
    def test_corrects_scattered_errors(self, num_errors):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 120).astype(np.uint8)
        coded = WIFI_CODE.encode(bits)
        corrupted = coded.copy()
        # Spread the errors far apart so they are independently correctable.
        positions = np.linspace(5, coded.size - 5, num_errors).astype(int)
        corrupted[positions] ^= 1
        assert (viterbi_decode(corrupted, WIFI_CODE) == bits).all()

    def test_finds_maximum_likelihood_sequence(self):
        """Against brute force over all short messages: the decoded
        codeword must be at minimal Hamming distance from the observation."""
        code = ConvolutionalCode(constraint_length=3, polynomials=(0o7, 0o5))
        rng = np.random.default_rng(3)
        k = 6
        messages = [np.array([(m >> i) & 1 for i in range(k)], dtype=np.uint8)
                    for m in range(2 ** k)]
        codewords = [code.encode(m) for m in messages]
        for _ in range(20):
            observed = rng.integers(0, 2, codewords[0].size).astype(np.uint8)
            decoded = viterbi_decode(observed, code)
            decoded_word = code.encode(decoded)
            best = min(int((observed != w).sum()) for w in codewords)
            assert int((observed != decoded_word).sum()) == best

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros(13, dtype=np.uint8), WIFI_CODE)

    def test_rejects_too_short_block(self):
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros(8, dtype=np.uint8), WIFI_CODE)

    @settings(max_examples=20, deadline=None)
    @given(bit_lists)
    def test_roundtrip_property(self, bits):
        array = np.asarray(bits, dtype=np.uint8)
        assert (viterbi_decode(WIFI_CODE.encode(array), WIFI_CODE) == array).all()


class TestViterbiSoft:
    def test_soft_equals_hard_for_unit_reliabilities(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 80).astype(np.uint8)
        coded = WIFI_CODE.encode(bits)
        coded[10] ^= 1
        reliabilities = 1.0 - 2.0 * coded.astype(float)
        assert (viterbi_decode_soft(reliabilities, WIFI_CODE)
                == viterbi_decode(coded, WIFI_CODE)).all()

    def test_low_confidence_errors_are_ignored(self):
        """Bits flipped with tiny reliability should not drag the decision."""
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        coded = WIFI_CODE.encode(bits).astype(float)
        reliabilities = 1.0 - 2.0 * coded
        flip = rng.choice(reliabilities.size, size=20, replace=False)
        reliabilities[flip] *= -0.01  # wrong sign, almost no confidence
        assert (viterbi_decode_soft(reliabilities, WIFI_CODE) == bits).all()

    def test_soft_beats_hard_at_equal_error_count(self):
        """With reliability information, soft decoding recovers a pattern
        hard decoding cannot."""
        code = WIFI_CODE
        rng = np.random.default_rng(6)
        soft_wins = 0
        trials = 20
        for _ in range(trials):
            bits = rng.integers(0, 2, 60).astype(np.uint8)
            coded = code.encode(bits)
            reliabilities = 1.0 - 2.0 * coded.astype(float)
            # Flip a burst of 6 adjacent bits but mark them unreliable.
            start = int(rng.integers(0, reliabilities.size - 6))
            reliabilities[start:start + 6] *= -0.05
            hard_in = (reliabilities < 0).astype(np.uint8)
            soft_ok = (viterbi_decode_soft(reliabilities, code) == bits).all()
            hard_ok = (viterbi_decode(hard_in, code) == bits).all()
            soft_wins += int(soft_ok and not hard_ok)
            assert soft_ok
        assert soft_wins > 0

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            viterbi_decode_soft(np.array([np.inf] * 14), WIFI_CODE)

    def test_non_finite_error_names_the_index(self):
        """The clamp contract means a non-finite reliability is a broken
        producer; the error must say *where* so the offender is findable."""
        reliabilities = np.ones(20)
        reliabilities[13] = np.nan
        with pytest.raises(ValueError, match=r"index 13 is nan"):
            viterbi_decode_soft(reliabilities, WIFI_CODE)


class TestViterbiBatch:
    """The batched trellis sweep: bit-identical to the scalar decoder
    across codes, block lengths and corruption, hard and soft alike."""

    def _corrupted_batch(self, code, info_bits, num_blocks, rng):
        messages = rng.integers(0, 2, (num_blocks, info_bits)).astype(np.uint8)
        coded = np.stack([code.encode(m) for m in messages])
        corrupted = coded.copy()
        flips = rng.random(corrupted.shape) < 0.04
        corrupted[flips] ^= 1
        return messages, corrupted

    @pytest.mark.parametrize("code", SWEEP_CODES,
                             ids=["wifi", "k3", "k5-rate13"])
    @pytest.mark.parametrize("info_bits", [16, 57, 120])
    def test_hard_batch_matches_scalar_rows(self, code, info_bits):
        rng = np.random.default_rng(info_bits)
        _, corrupted = self._corrupted_batch(code, info_bits, 8, rng)
        batched = viterbi_decode_batch(corrupted, code)
        assert batched.shape == (8, info_bits)
        for row, decoded in zip(corrupted, batched):
            assert (decoded == viterbi_decode(row, code)).all()

    @pytest.mark.parametrize("code", SWEEP_CODES,
                             ids=["wifi", "k3", "k5-rate13"])
    def test_soft_batch_matches_scalar_rows(self, code):
        rng = np.random.default_rng(99)
        _, corrupted = self._corrupted_batch(code, 80, 6, rng)
        reliabilities = (1.0 - 2.0 * corrupted.astype(np.float64)
                         + rng.normal(0.0, 0.7, corrupted.shape))
        batched = viterbi_decode_soft_batch(reliabilities, code)
        scalar = viterbi_decode_soft_batch(reliabilities, code,
                                           strategy="scalar")
        assert (batched == scalar).all()
        for row, decoded in zip(reliabilities, batched):
            assert (decoded == viterbi_decode_soft(row, code)).all()

    def test_clean_batch_roundtrips(self):
        rng = np.random.default_rng(7)
        messages = rng.integers(0, 2, (5, 64)).astype(np.uint8)
        coded = np.stack([WIFI_CODE.encode(m) for m in messages])
        assert (viterbi_decode_batch(coded, WIFI_CODE) == messages).all()

    def test_single_row_batch_matches_scalar(self):
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        coded = WIFI_CODE.encode(bits)
        coded[3] ^= 1
        batched = viterbi_decode_batch(coded[None, :], WIFI_CODE)
        assert (batched[0] == viterbi_decode(coded, WIFI_CODE)).all()

    def test_empty_batch(self):
        empty = np.empty((0, WIFI_CODE.coded_length(32)))
        decoded = viterbi_decode_soft_batch(empty, WIFI_CODE)
        assert decoded.shape == (0, 32)
        assert decoded.dtype == np.uint8

    def test_strategies_are_the_published_tuple(self):
        assert VITERBI_STRATEGIES == ("batch", "scalar")

    def test_rejects_unknown_strategy(self):
        block = np.zeros((2, WIFI_CODE.coded_length(16)))
        with pytest.raises(ValueError, match="unknown Viterbi strategy"):
            viterbi_decode_soft_batch(block, WIFI_CODE, strategy="vector")

    def test_rejects_wrong_rank(self):
        flat = np.zeros(WIFI_CODE.coded_length(16))
        with pytest.raises(ValueError, match="num_blocks, coded_len"):
            viterbi_decode_soft_batch(flat, WIFI_CODE)
        with pytest.raises(ValueError, match="num_blocks, coded_len"):
            viterbi_decode_batch(flat.astype(np.uint8), WIFI_CODE)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            viterbi_decode_soft_batch(np.zeros((2, 13)), WIFI_CODE)
        with pytest.raises(ValueError):  # tail bits only, no information
            viterbi_decode_soft_batch(np.zeros((2, 12)), WIFI_CODE)

    def test_non_finite_error_names_row_and_column(self):
        block = np.ones((4, WIFI_CODE.coded_length(16)))
        block[2, 7] = -np.inf
        with pytest.raises(ValueError, match=r"index \(2, 7\) is -inf"):
            viterbi_decode_soft_batch(block, WIFI_CODE)


class TestCodedChainProperty:
    """Hypothesis sweep of the whole bit chain: encode -> interleave ->
    pad -> recover round-trips the payload for every constellation, code
    mode and pad size, and the batched Viterbi agrees bit-for-bit with
    the scalar decoder on corrupted inputs from the same chain."""

    @settings(max_examples=20, deadline=None)
    @given(order=st.sampled_from([4, 16, 64, 256]),
           payload_bits=st.integers(min_value=24, max_value=180),
           coded=st.booleans(),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_chain_roundtrip_and_batch_agreement(self, order, payload_bits,
                                                 coded, seed):
        config = default_config(order=order, payload_bits=payload_bits,
                                coded=coded)
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 2, payload_bits).astype(np.uint8)
        frame = encode_stream(payload, config)
        indices = frame.symbol_indices.reshape(frame.grid.shape)
        decision = recover_stream(indices, frame.num_pad_bits, config)
        assert decision.crc_ok
        assert (decision.payload_bits == payload).all()
        if not coded:
            return
        # Corrupt the recovered coded block and decode it three ways —
        # one batch sweep, the scalar strategy, and the scalar decoder —
        # all three must agree bit-for-bit.
        block = stream_coded_bits(indices, frame.num_pad_bits, config)
        reliabilities = (1.0 - 2.0 * block.astype(np.float64)
                         + rng.normal(0.0, 0.6, block.size))
        stacked = np.stack([reliabilities,
                            reliabilities[::-1].copy(),
                            -reliabilities])
        batched = viterbi_decode_soft_batch(stacked, config.code)
        scalar = viterbi_decode_soft_batch(stacked, config.code,
                                           strategy="scalar")
        assert (batched == scalar).all()
        for row, decoded in zip(stacked, batched):
            assert (decoded == viterbi_decode_soft(row, config.code)).all()


class TestInterleaver:
    @pytest.mark.parametrize("n_bpsc", [2, 4, 6, 8])
    def test_roundtrip(self, n_bpsc):
        n_cbps = 48 * n_bpsc
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 3 * n_cbps).astype(np.uint8)
        assert (deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
                == bits).all()

    def test_permutation_is_bijective(self):
        perm = interleaver_permutation(192, 4)
        assert sorted(perm.tolist()) == list(range(192))

    def test_adjacent_bits_are_spread(self):
        """Consecutive coded bits must land at least 10 positions apart."""
        perm = interleaver_permutation(96, 2)
        gaps = np.abs(np.diff(perm))
        assert gaps.min() >= 3
        assert np.median(gaps) >= 6

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(100, dtype=np.uint8), 96, 2)

    def test_rejects_non_multiple_of_16(self):
        with pytest.raises(ValueError):
            interleaver_permutation(50, 2)


class TestScrambler:
    def test_involution(self):
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        assert (descramble(scramble(bits)) == bits).all()

    def test_sequence_period_127(self):
        sequence = scrambler_sequence(254)
        assert (sequence[:127] == sequence[127:]).all()
        assert sequence[:127].sum() == 64  # balanced m-sequence: 64 ones

    def test_whitens_constant_input(self):
        zeros = np.zeros(1000, dtype=np.uint8)
        scrambled = scramble(zeros)
        assert 0.4 < scrambled.mean() < 0.6

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            scramble(np.zeros(8, dtype=np.uint8), seed=0)


class TestCrc:
    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        framed = append_crc(bits)
        assert check_crc(framed)
        for position in (0, 150, framed.size - 1):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not check_crc(corrupted)

    def test_detects_burst_errors(self):
        bits = np.ones(128, dtype=np.uint8)
        framed = append_crc(bits)
        corrupted = framed.copy()
        corrupted[40:72] ^= 1
        assert not check_crc(corrupted)

    def test_known_vector(self):
        """MSB-first CRC-32 (the CRC-32/BZIP2 variant: init all-ones,
        final complement, no reflection) of ASCII '123456789' is
        0xFC891918."""
        data = np.unpackbits(np.frombuffer(b"123456789", dtype=np.uint8))
        crc = crc32_bits(data)
        value = int("".join(str(b) for b in crc), 2)
        assert value == 0xFC891918

    def test_non_byte_aligned_payload(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0], dtype=np.uint8)
        assert check_crc(append_crc(bits))

    def test_too_short_stream_fails(self):
        assert not check_crc(np.zeros(10, dtype=np.uint8))

    @settings(max_examples=20, deadline=None)
    @given(bit_lists)
    def test_append_check_property(self, bits):
        assert check_crc(append_crc(np.asarray(bits, dtype=np.uint8)))
