"""Batch detection engine: scalar/batch equivalence and counter parity.

The batch API's contract is *bit-identical* results: ``decode_batch`` must
return exactly the symbols, distances and complexity tallies the scalar
per-vector path produces — equality, not ``allclose``.  These tests sweep
randomized channels across constellations, antenna geometries and every
enumerator to pin that contract down, and cover the cross-detector ML
agreement and the finite-initial-radius ``found=False`` edge case.
"""

import numpy as np
import pytest

from repro.channel import (
    GeometricChannelModel,
    awgn,
    correlated_rayleigh_channel,
    noise_variance_for_snr,
    rayleigh_channel,
)
from repro.constellation import qam
from repro.detect import SphereDetector
from repro.sphere import KBestDecoder, SphereDecoder, triangularize
from repro.sphere.counters import ComplexityCounters
from repro.sphere.decoder import ENUMERATORS

COUNTER_FIELDS = ("ped_calcs", "visited_nodes", "expanded_nodes", "leaves",
                  "geometric_prunes", "complex_mults")

#: (order, num_tx, num_rx, snr_db) — 4/16/64-QAM over 2x2 and 4x4.
CONFIGS = [
    (4, 2, 2, 12.0),
    (4, 4, 4, 14.0),
    (16, 2, 2, 18.0),
    (16, 4, 4, 20.0),
    (64, 2, 2, 24.0),
    (64, 4, 4, 26.0),
]

DRAWS_PER_CONFIG = 9
BATCH_SIZE = 4  # vectors per draw -> 6 * 9 * 4 = 216 draws per sweep


def _triangular_batch(order, num_tx, num_rx, snr_db, rng, size=BATCH_SIZE):
    """One random channel and a ``(size, nc)`` batch of observations,
    already rotated into the triangular domain."""
    constellation = qam(order)
    channel = rayleigh_channel(num_rx, num_tx, rng)
    sent = rng.integers(0, order, size=(size, num_tx))
    noise_variance = noise_variance_for_snr(channel, snr_db)
    received = (constellation.points[sent] @ channel.T
                + awgn((size, num_rx), noise_variance, rng))
    q, r = triangularize(channel)
    return constellation, r, received @ np.conj(q)


def _sum_scalar(decoder, r, y_hat_batch):
    """Per-vector scalar decodes plus their summed counters."""
    totals = ComplexityCounters()
    results = []
    for row in y_hat_batch:
        result = decoder.decode_triangular(r, row)
        totals.merge(result.counters)
        results.append(result)
    return results, totals


def _assert_batch_matches(batch, scalars, totals):
    for t, scalar in enumerate(scalars):
        assert bool(batch.found[t]) == scalar.found
        assert np.array_equal(batch.symbol_indices[t], scalar.symbol_indices)
        # Bit-identical, not allclose: the batch path must run the same
        # floating-point program as the scalar path.
        assert (batch.distances_sq[t] == scalar.distance_sq
                or (np.isinf(batch.distances_sq[t])
                    and np.isinf(scalar.distance_sq)))
    for field in COUNTER_FIELDS:
        assert getattr(batch.counters, field) == getattr(totals, field), field


@pytest.mark.slow
@pytest.mark.parametrize("enumerator", ENUMERATORS)
def test_sphere_decode_batch_is_bit_identical(enumerator):
    """>= 200 seeded draws per enumerator: batch == scalar, exactly."""
    rng = np.random.default_rng(1234)
    pruning = enumerator in ("zigzag", "shabany")
    for order, num_tx, num_rx, snr_db in CONFIGS:
        decoder = SphereDecoder(qam(order), enumerator=enumerator,
                                geometric_pruning=pruning)
        for _ in range(DRAWS_PER_CONFIG):
            _, r, y_hat = _triangular_batch(order, num_tx, num_rx, snr_db, rng)
            batch = decoder.decode_batch(r, y_hat)
            scalars, totals = _sum_scalar(decoder, r, y_hat)
            _assert_batch_matches(batch, scalars, totals)


@pytest.mark.slow
def test_sphere_decode_batch_without_pruning_is_bit_identical():
    """The zigzag-only ablation configuration follows the same contract."""
    rng = np.random.default_rng(99)
    decoder = SphereDecoder(qam(16), enumerator="zigzag",
                            geometric_pruning=False)
    for _ in range(20):
        _, r, y_hat = _triangular_batch(16, 4, 4, 20.0, rng)
        batch = decoder.decode_batch(r, y_hat)
        scalars, totals = _sum_scalar(decoder, r, y_hat)
        _assert_batch_matches(batch, scalars, totals)


@pytest.mark.slow
@pytest.mark.parametrize("k", [1, 2, 5, 16, 40])
def test_kbest_decode_batch_is_bit_identical(k):
    """The fully vectorised K-best path reproduces the scalar lazy-zigzag
    expansion bit for bit, lazy-enumerator counter accounting included."""
    rng = np.random.default_rng(k)
    for order, num_tx, num_rx, snr_db in CONFIGS:
        decoder = KBestDecoder(qam(order), k=k)
        for _ in range(DRAWS_PER_CONFIG):
            _, r, y_hat = _triangular_batch(order, num_tx, num_rx, snr_db, rng)
            batch = decoder.decode_batch(r, y_hat)
            scalars, totals = _sum_scalar(decoder, r, y_hat)
            _assert_batch_matches(batch, scalars, totals)


class TestCrossDetectorAgreement:
    """On well-conditioned random channels every exact decoder must return
    the same maximum-likelihood solution."""

    def _instances(self, order, num_tx, snr_db, count, seed):
        rng = np.random.default_rng(seed)
        produced = 0
        while produced < count:
            channel = rayleigh_channel(4, num_tx, rng)
            # Keep the sweep honest but fast: skip near-singular draws.
            if np.linalg.cond(channel) > 20.0:
                continue
            produced += 1
            yield _triangular_batch_from(channel, order, snr_db, rng)

    def test_all_enumerators_find_the_same_ml_solution(self):
        for order, num_tx, snr_db in [(16, 2, 16.0), (16, 4, 18.0),
                                      (64, 2, 22.0)]:
            for r, y_hat in self._instances(order, num_tx, snr_db, 6, order):
                reference = None
                for enumerator in ENUMERATORS:
                    pruning = enumerator in ("zigzag", "shabany")
                    decoder = SphereDecoder(qam(order), enumerator=enumerator,
                                            geometric_pruning=pruning)
                    batch = decoder.decode_batch(r, y_hat)
                    assert batch.found.all()
                    if reference is None:
                        reference = batch
                    else:
                        assert np.array_equal(batch.symbol_indices,
                                              reference.symbol_indices)
                        assert np.array_equal(batch.distances_sq,
                                              reference.distances_sq)

    def test_full_width_kbest_matches_ml(self):
        """K large enough to keep every candidate is exhaustive search."""
        for order, num_tx, snr_db, k in [(16, 2, 16.0, 256),
                                         (4, 4, 12.0, 256)]:
            for r, y_hat in self._instances(order, num_tx, snr_db, 4,
                                            17 * order):
                ml = SphereDecoder(qam(order)).decode_batch(r, y_hat)
                kbest = KBestDecoder(qam(order), k=k).decode_batch(r, y_hat)
                assert np.array_equal(kbest.symbol_indices, ml.symbol_indices)
                # Same solution; the distance accumulates along a different
                # traversal, so exact equality only holds within a decoder.
                np.testing.assert_allclose(kbest.distances_sq, ml.distances_sq,
                                           rtol=1e-10)

    def test_finite_radius_not_found_edge_case(self):
        """A radius that excludes every leaf must report found=False in
        both the scalar and the batch paths, with matching sentinels."""
        rng = np.random.default_rng(5)
        constellation = qam(16)
        channel = rayleigh_channel(4, 4, rng)
        _, r, y_hat = _triangular_batch(16, 4, 4, 20.0, rng)
        decoder = SphereDecoder(constellation, initial_radius_sq=1e-12)
        batch = decoder.decode_batch(r, y_hat)
        assert not batch.found.any()
        assert (batch.symbol_indices == -1).all()
        assert np.isinf(batch.distances_sq).all()
        scalars, totals = _sum_scalar(decoder, r, y_hat)
        _assert_batch_matches(batch, scalars, totals)

    def test_mixed_found_and_not_found_in_one_batch(self):
        """A radius between two observations' ML distances splits a batch."""
        rng = np.random.default_rng(6)
        constellation = qam(16)
        _, r, y_hat = _triangular_batch(16, 4, 4, 20.0, rng, size=8)
        exact = SphereDecoder(constellation).decode_batch(r, y_hat)
        threshold = float(np.median(exact.distances_sq))
        decoder = SphereDecoder(constellation, initial_radius_sq=threshold)
        batch = decoder.decode_batch(r, y_hat)
        expected_found = exact.distances_sq < threshold
        assert np.array_equal(batch.found, expected_found)
        assert batch.found.any() and not batch.found.all()
        scalars, totals = _sum_scalar(decoder, r, y_hat)
        _assert_batch_matches(batch, scalars, totals)


def _triangular_batch_from(channel, order, snr_db, rng, size=3):
    constellation = qam(order)
    num_tx = channel.shape[1]
    sent = rng.integers(0, order, size=(size, num_tx))
    noise_variance = noise_variance_for_snr(channel, snr_db)
    received = (constellation.points[sent] @ channel.T
                + awgn((size, channel.shape[0]), noise_variance, rng))
    q, r = triangularize(channel)
    return r, received @ np.conj(q)


class TestConditionedChannelEquivalence:
    """Scalar/batch equivalence on the channels that stress the search.

    Kronecker-correlated Rayleigh and small-angular-spread geometric
    draws raise the condition number (the paper's Fig. 2 regimes), which
    lengthens and *skews* the per-vector searches — exactly where the
    frontier engine's scheduling (lockstep ticks plus straggler drain)
    must not leak into results.  The throughput analyses in PAPERS.md
    make the same point: the latency distribution over correlated
    channels, not the i.i.d. mean, is what governs throughput, so the
    equivalence contract is pinned here too, not just on Rayleigh draws.
    """

    def _assert_equivalent(self, channel, order, snr_db, rng, size=6):
        constellation = qam(order)
        sent = rng.integers(0, order, size=(size, channel.shape[1]))
        noise_variance = noise_variance_for_snr(channel, snr_db)
        received = (constellation.points[sent] @ channel.T
                    + awgn((size, channel.shape[0]), noise_variance, rng))
        q, r = triangularize(channel)
        y_hat = received @ np.conj(q)
        loop = SphereDecoder(constellation, batch_strategy="loop")
        frontier = SphereDecoder(constellation)
        scalars, totals = _sum_scalar(loop, r, y_hat)
        _assert_batch_matches(frontier.decode_batch(r, y_hat), scalars,
                              totals)
        _assert_batch_matches(loop.decode_batch(r, y_hat), scalars, totals)

    def test_correlated_rayleigh_moderate(self):
        rng = np.random.default_rng(606)
        channel = correlated_rayleigh_channel(4, 4, 0.6, 0.6, rng)
        self._assert_equivalent(channel, 16, 22.0, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("coefficient", [0.5, 0.8, 0.9])
    def test_correlated_rayleigh_sweep(self, coefficient):
        """Higher correlation -> higher condition number -> longer,
        heavier-tailed searches; equivalence must hold throughout."""
        rng = np.random.default_rng(int(coefficient * 100))
        for order, snr_db in [(4, 16.0), (16, 24.0)]:
            for _ in range(3):
                channel = correlated_rayleigh_channel(
                    4, 4, coefficient, coefficient, rng)
                if np.linalg.cond(channel) > 1e4:
                    continue  # numerically rank deficient for QR
                self._assert_equivalent(channel, order, snr_db, rng)

    @pytest.mark.slow
    def test_geometric_ill_conditioned(self):
        """Clustered-reflector geometric channels (a few degrees of
        angular spread): the paper's poorly-conditioned regime."""
        model = GeometricChannelModel(4, rng=808)
        rng = np.random.default_rng(808)
        checked = 0
        while checked < 4:
            channel = model.sample(4, 3.0)
            condition = np.linalg.cond(channel)
            if condition > 1e4:
                continue  # too singular even for the scalar decoder
            self._assert_equivalent(channel, 16, 26.0, rng, size=5)
            checked += 1

    @pytest.mark.slow
    def test_geometric_well_vs_ill_conditioned_counters(self):
        """Sanity anchor for the Fig. 2 story inside the batch path: the
        ill-conditioned draw costs more PED calculations per detection
        than the well-conditioned one, in both strategies identically."""
        model = GeometricChannelModel(4, rng=31)
        rng = np.random.default_rng(31)
        costs = {}
        for label, spread in (("ill", 2.0), ("well", 40.0)):
            while True:
                channel = model.sample(4, spread)
                if np.linalg.cond(channel) < (1e3 if label == "ill"
                                              else 50.0):
                    break
            constellation = qam(16)
            sent = rng.integers(0, 16, size=(8, 4))
            noise_variance = noise_variance_for_snr(channel, 24.0)
            received = (constellation.points[sent] @ channel.T
                        + awgn((8, 4), noise_variance, rng))
            q, r = triangularize(channel)
            y_hat = received @ np.conj(q)
            loop = SphereDecoder(constellation, batch_strategy="loop")
            frontier = SphereDecoder(constellation)
            reference = loop.decode_batch(r, y_hat)
            batch = frontier.decode_batch(r, y_hat)
            assert batch.counters.ped_calcs == reference.counters.ped_calcs
            costs[label] = batch.counters.ped_calcs
        assert costs["ill"] > costs["well"]

    def test_correlated_kbest_batch_equivalence(self):
        """The vectorised K-best path honours the same contract on
        correlated channels."""
        rng = np.random.default_rng(17)
        channel = correlated_rayleigh_channel(4, 4, 0.7, 0.7, rng)
        constellation = qam(16)
        sent = rng.integers(0, 16, size=(6, 4))
        noise_variance = noise_variance_for_snr(channel, 22.0)
        received = (constellation.points[sent] @ channel.T
                    + awgn((6, 4), noise_variance, rng))
        q, r = triangularize(channel)
        y_hat = received @ np.conj(q)
        decoder = KBestDecoder(constellation, k=8)
        batch = decoder.decode_batch(r, y_hat)
        scalars, totals = _sum_scalar(decoder, r, y_hat)
        _assert_batch_matches(batch, scalars, totals)


class TestAdapterCounterAccounting:
    """`detect_batch` counters must equal the sum of per-vector scalar
    counters — the tallies behind the paper's Figs. 14-15."""

    @pytest.mark.parametrize("make", [
        lambda c: SphereDecoder(c),
        lambda c: KBestDecoder(c, k=8),
    ], ids=["sphere", "kbest"])
    def test_block_counters_equal_scalar_sum(self, make):
        rng = np.random.default_rng(21)
        constellation = qam(16)
        channel = rayleigh_channel(4, 4, rng)
        block = (rng.standard_normal((12, 4))
                 + 1j * rng.standard_normal((12, 4)))
        decoder = make(constellation)
        adapter = SphereDetector(decoder)
        result = adapter.detect_batch(channel, block, 0.1)

        q, r = triangularize(channel)
        y_hat = block @ np.conj(q)
        _, totals = _sum_scalar(decoder, r, y_hat)
        for field in COUNTER_FIELDS:
            assert getattr(result.counters, field) == getattr(totals, field)
        assert adapter.last_block_counters is result.counters
        assert adapter.last_block_detections == 12
        # Footnote-5 cost model: each PED calc costs nc + 1 complex mults.
        assert (result.counters.complex_mults
                == result.counters.ped_calcs * (channel.shape[1] + 1))

    def test_empty_batch_is_a_no_op(self):
        """T=0 blocks (e.g. a frame with no data symbols) must not crash
        and must report zero work."""
        rng = np.random.default_rng(40)
        channel = rayleigh_channel(4, 4, rng)
        q, r = triangularize(channel)
        empty = np.zeros((0, 4), dtype=np.complex128)
        for decoder in (SphereDecoder(qam(16)), KBestDecoder(qam(16), k=4)):
            batch = decoder.decode_batch(r, empty)
            assert batch.symbol_indices.shape == (0, 4)
            assert batch.found.shape == (0,)
            assert batch.counters.ped_calcs == 0
            assert batch.counters.visited_nodes == 0

    def test_kbest_adapter_name_and_detect(self):
        adapter = SphereDetector(KBestDecoder(qam(16), k=5))
        assert adapter.name == "k-best[5]"
        rng = np.random.default_rng(33)
        channel = rayleigh_channel(4, 2, rng)
        block = (rng.standard_normal((4, 4))
                 + 1j * rng.standard_normal((4, 4)))
        batch = adapter.detect_batch(channel, block, 0.1)
        for t in range(4):
            single = adapter.detect(channel, block[t], 0.1)
            assert np.array_equal(batch.symbol_indices[t],
                                  single.symbol_indices)
