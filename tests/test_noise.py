"""Tests for AWGN generation and SNR bookkeeping."""

import numpy as np
import pytest

from repro.channel import (
    average_stream_snr_db,
    awgn,
    db_to_linear,
    linear_to_db,
    noise_variance_for_snr,
    rayleigh_channel,
    stream_snrs,
)


class TestDbConversion:
    def test_roundtrip(self):
        assert linear_to_db(db_to_linear(17.3)) == pytest.approx(17.3)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert float(linear_to_db(100.0)) == pytest.approx(20.0)

    def test_rejects_non_positive_linear(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)


class TestAwgn:
    def test_variance_matches_request(self):
        samples = awgn(200_000, variance=3.0, rng=0)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(3.0, rel=0.02)

    def test_split_between_real_and_imag(self):
        samples = awgn(200_000, variance=2.0, rng=1)
        assert np.var(samples.real) == pytest.approx(1.0, rel=0.02)
        assert np.var(samples.imag) == pytest.approx(1.0, rel=0.02)

    def test_zero_variance_gives_zeros(self):
        assert (awgn((4, 4), variance=0.0, rng=2) == 0).all()

    def test_shape(self):
        assert awgn((3, 5), variance=1.0, rng=3).shape == (3, 5)

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            awgn(4, variance=-1.0)

    def test_deterministic_given_seed(self):
        assert (awgn(8, 1.0, rng=7) == awgn(8, 1.0, rng=7)).all()


class TestSnrCalibration:
    def test_noise_variance_hits_target_snr(self):
        channel = rayleigh_channel(4, 4, rng=0)
        for target in (5.0, 15.0, 25.0):
            variance = noise_variance_for_snr(channel, target)
            assert average_stream_snr_db(channel, variance) == pytest.approx(target)

    def test_stream_snrs_formula(self):
        channel = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=complex)
        snrs = stream_snrs(channel, noise_variance=0.5)
        assert snrs == pytest.approx([2.0, 8.0])

    def test_rejects_zero_channel(self):
        with pytest.raises(ValueError):
            noise_variance_for_snr(np.zeros((2, 2), dtype=complex), 10.0)

    def test_rejects_non_positive_noise(self):
        channel = rayleigh_channel(2, 2, rng=0)
        with pytest.raises(ValueError):
            stream_snrs(channel, noise_variance=0.0)
