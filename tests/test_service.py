"""Sharded detector farm + cell-site service front (ISSUE-8).

The farm contract under test: deterministic signature routing, results
bit-identical to standalone ``decode_frame`` through both backends and
the socket front, per-connection frame ownership, farm-wide
backpressure, and the supervision story — a SIGKILLed worker's in-flight
frames are replayed (real results) or expired (explicit
``FrameExpired``), never hung and never fabricated.

The deterministic sweeps (shard counts × admission orders × QoS mixes)
live in ``tests/test_runtime.py::test_farm_shard_counts_bit_identical``;
this file covers the farm's own machinery, including the process
backend, which forks real workers and therefore stays small and
targeted.
"""

import numpy as np
import pytest

from repro.constellation import qam
from repro.runtime import FrameExpired
from repro.runtime.stats import aggregate_summaries
from repro.service import (
    CellSiteClient,
    CellSiteServer,
    DetectorFarm,
    ShardRuntime,
    request_signature,
    shard_for,
)
from repro.sphere import ListSphereDecoder, SphereDecoder

from test_runtime import _assert_identical, _make_frame, _reference


def _mixed_frames(rng, repeats=2):
    """Hard 16-QAM, hard QPSK and soft 16-QAM frames — three distinct
    signatures, so multi-shard farms actually spread work."""
    hard16 = SphereDecoder(qam(16))
    hard4 = SphereDecoder(qam(4))
    soft16 = ListSphereDecoder(qam(16), list_size=4)
    frames = []
    for _ in range(repeats):
        frames.append(_make_frame(hard16, 5, 2, 18.0, rng))
        frames.append(_make_frame(hard4, 4, 2, 12.0, rng))
        frames.append(_make_frame(soft16, 4, 2, 15.0, rng, soft=True))
    return frames


def _check_all(handles, frames):
    for handle, frame in zip(handles, frames):
        assert handle.resolution == "completed", handle.resolution
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------

def test_routing_is_deterministic_and_signature_stable():
    rng = np.random.default_rng(0)
    frames = _mixed_frames(rng, repeats=1)
    signatures = [request_signature(frame) for frame in frames]
    assert len(set(signatures)) == 3, "three decoder setups, three keys"
    # Same decoder config, different payload -> same signature.
    again = _mixed_frames(np.random.default_rng(1), repeats=1)
    assert [request_signature(frame) for frame in again] == signatures
    for shards in (1, 2, 4, 7):
        routes = [shard_for(sig, shards) for sig in signatures]
        assert all(0 <= route < shards for route in routes)
        assert routes == [shard_for(sig, shards) for sig in signatures]
    with DetectorFarm(4, backend="inline") as farm:
        assert [farm.route(frame) for frame in frames] == [
            shard_for(sig, 4) for sig in signatures]

    with pytest.raises(ValueError):
        shard_for(signatures[0], 0)
    with pytest.raises(ValueError):
        request_signature(_bad_decoder_frame(rng))


def _bad_decoder_frame(rng):
    from repro.sphere import KBestDecoder
    frame = _make_frame(SphereDecoder(qam(4)), 2, 1, 15.0, rng)
    frame.decoder = KBestDecoder(qam(4), k=4)
    return frame


# ----------------------------------------------------------------------
# Process backend: bit-exactness, stats, supervision
# ----------------------------------------------------------------------

def test_process_farm_bit_identical_and_aggregated_stats():
    rng = np.random.default_rng(2)
    frames = _mixed_frames(rng)
    with DetectorFarm(2, backend="process") as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.drain()
        _check_all(handles, frames)
        assert farm.idle
        stats = farm.stats()
    assert stats["shards"] == 2
    assert stats["frames_completed"] == len(frames)
    assert stats["frames_expired"] == 0
    assert sum(stats["frames_routed"]) == len(frames)
    assert all(count > 0 for count in stats["frames_routed"]), (
        "three signatures across two shards must land on both")
    assert stats["restarts"] == [0, 0]
    assert len(stats["per_shard"]) == 2
    assert stats["searches_completed"] == sum(
        summary["searches_completed"] for summary in stats["per_shard"]
        if summary is not None)


def test_killed_worker_frames_are_replayed_not_lost():
    """SIGKILL one shard mid-load: its in-flight frames (no deadlines)
    are replayed into a fresh worker and still decode bit-identically —
    no frame lost, no hang, at least one restart recorded."""
    rng = np.random.default_rng(3)
    frames = _mixed_frames(rng)
    with DetectorFarm(2, backend="process") as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.kill_shard(0)
        farm.drain()
        _check_all(handles, frames)
        assert sum(farm.stats()["restarts"]) >= 1


def test_killed_worker_overdue_frames_expire_explicitly():
    """Frames whose deadline passed while their worker was dead resolve
    as explicit expiries through ``FrameExpired`` — never silently and
    never with a made-up result.  ``max_restarts=0`` makes the first
    kill exhaust the restart budget, so every in-flight frame expires
    deterministically."""
    rng = np.random.default_rng(4)
    frames = _mixed_frames(rng, repeats=1)
    for frame in frames:
        frame.deadline_s = 3600.0           # generous: expiry must come
    with DetectorFarm(1, backend="process", max_restarts=0) as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.kill_shard(0)                  # from exhaustion, not time
        farm.drain()
        for handle in handles:
            assert handle.done
            assert handle.resolution == "expired"
            assert handle.missed_deadline
            with pytest.raises(FrameExpired):
                handle.result()
        assert farm.stats()["restarts"] == [1]


# ----------------------------------------------------------------------
# Farm semantics: backpressure, cancel, lifecycle
# ----------------------------------------------------------------------

def test_farm_backpressure_bounds_outstanding():
    rng = np.random.default_rng(5)
    decoder = SphereDecoder(qam(4))
    frames = [_make_frame(decoder, 3, 2, 15.0, rng) for _ in range(6)]
    with DetectorFarm(2, backend="inline", max_outstanding=2) as farm:
        handles = [farm.submit(frame) for frame in frames]
        assert farm.outstanding <= 2
        farm.drain()
        _check_all(handles, frames)


def test_farm_cancel_resolves_synchronously():
    rng = np.random.default_rng(6)
    decoder = SphereDecoder(qam(4))
    frames = [_make_frame(decoder, 3, 2, 15.0, rng) for _ in range(3)]
    with DetectorFarm(2, backend="inline") as farm:
        handles = [farm.submit(frame) for frame in frames]
        victim = handles[1]
        assert farm.cancel(victim)
        assert victim.resolution == "cancelled" and victim.done
        with pytest.raises(FrameExpired):
            victim.result()
        assert not farm.cancel(victim)      # already resolved
        farm.drain()
        _check_all([handles[0], handles[2]],
                   [frames[0], frames[2]])
        assert not farm.cancel(handles[0])  # completed long ago


def test_farm_close_expires_unresolved_frames():
    rng = np.random.default_rng(7)
    farm = DetectorFarm(1, backend="inline")
    handle = farm.submit(_make_frame(SphereDecoder(qam(4)), 3, 2, 15.0,
                                     rng))
    farm.close()
    assert handle.resolution == "expired" and handle.missed_deadline
    with pytest.raises(ValueError):
        farm.submit(_make_frame(SphereDecoder(qam(4)), 2, 1, 15.0, rng))
    farm.close()                            # idempotent


def test_farm_validation():
    with pytest.raises(ValueError):
        DetectorFarm(0)
    with pytest.raises(ValueError):
        DetectorFarm(2, backend="thread")
    with pytest.raises(ValueError):
        DetectorFarm(2, max_outstanding=0)
    with DetectorFarm(1, backend="inline") as farm:
        with pytest.raises(ValueError):
            farm.kill_shard(0)              # needs real processes


def test_shard_runtime_cancel_queued_and_inflight():
    """The shared shard brain: cancelling a queued frame removes it
    before admission, cancelling an admitted one evicts it, and a
    resolved frame reports the race lost."""
    rng = np.random.default_rng(8)
    decoder = SphereDecoder(qam(4))
    shard = ShardRuntime({"capacity": 4, "max_in_flight": 1})
    frames = [_make_frame(decoder, 3, 2, 15.0, rng) for _ in range(3)]
    for frame_id, frame in enumerate(frames):
        shard.submit(frame_id, frame)
    assert shard.outstanding == 3
    assert shard.cancel(2)                  # still queued locally
    assert shard.cancel(0)                  # in flight in the runtime
    payloads = shard.drain()
    assert [payload["frame_id"] for payload in payloads] == [1]
    assert payloads[0]["resolution"] == "completed"
    assert not shard.cancel(1)              # already resolved
    assert shard.idle


# ----------------------------------------------------------------------
# The socket front: two cells, one farm
# ----------------------------------------------------------------------

def test_two_clients_share_a_farm_with_ownership():
    rng = np.random.default_rng(9)
    frames = _mixed_frames(rng)
    with CellSiteServer(DetectorFarm(2, backend="process")) as server:
        with CellSiteClient(server.address) as cell_a, \
                CellSiteClient(server.address) as cell_b:
            ids_a = [cell_a.submit(frame) for frame in frames[:3]]
            ids_b = [cell_b.submit(frame) for frame in frames[3:]]
            assert cell_a.outstanding == 3
            payloads_a = cell_a.drain()
            payloads_b = cell_b.drain()
            # Ownership: each cell sees exactly its own frames.
            assert {p["frame_id"] for p in payloads_a} == set(ids_a)
            assert {p["frame_id"] for p in payloads_b} == set(ids_b)
            for ids, payloads, offset in ((ids_a, payloads_a, 0),
                                          (ids_b, payloads_b, 3)):
                by_id = {p["frame_id"]: p for p in payloads}
                for position, frame_id in enumerate(ids):
                    frame = frames[offset + position]
                    _assert_identical(by_id[frame_id]["result"],
                                      _reference(frame),
                                      frame.noise_variance is not None)
            stats = cell_a.stats()
            assert stats["frames_completed"] == len(frames)
            assert cell_a.outstanding == 0


def test_client_cancel_over_the_wire():
    rng = np.random.default_rng(10)
    decoder = SphereDecoder(qam(4))
    with CellSiteServer(DetectorFarm(1, backend="process")) as server:
        with CellSiteClient(server.address) as cell:
            frame_id = cell.submit(_make_frame(decoder, 3, 2, 15.0, rng))
            keeper = cell.submit(_make_frame(decoder, 3, 2, 15.0, rng))
            assert cell.cancel(frame_id)
            assert not cell.cancel(frame_id)     # already cancelled
            assert not cell.cancel(999_999)      # never existed
            payloads = cell.drain()
            assert [p["frame_id"] for p in payloads] == [keeper]
            assert payloads[0]["resolution"] == "completed"


# ----------------------------------------------------------------------
# Stats aggregation
# ----------------------------------------------------------------------

def test_aggregate_summaries_sums_and_recombines():
    rng = np.random.default_rng(11)
    decoder = SphereDecoder(qam(4))
    shards = [ShardRuntime(None), ShardRuntime(None)]
    for index in range(4):
        shards[index % 2].submit(index,
                                 _make_frame(decoder, 3, 2, 15.0, rng))
    for shard in shards:
        shard.drain()
    summaries = [shard.summary() for shard in shards]
    farm_view = aggregate_summaries(summaries)
    assert farm_view["shards"] == 2
    assert farm_view["frames_completed"] == 4
    assert farm_view["visited_nodes"] == sum(
        summary["visited_nodes"] for summary in summaries)
    # Shards run concurrently: throughput adds, wall time does not.
    assert farm_view["frames_per_second"] == pytest.approx(sum(
        summary["frames_per_second"] for summary in summaries))
    assert farm_view["elapsed_s"] == max(
        summary["elapsed_s"] for summary in summaries)
    empty = aggregate_summaries([])
    assert empty["shards"] == 0 and empty["frames_completed"] == 0
    assert empty["elapsed_s"] == 0.0 and empty["deadline_miss_rate"] == 0.0


# ----------------------------------------------------------------------
# Worker loop and hang detection
# ----------------------------------------------------------------------

class _ScriptedPipe:
    """Drives ``worker_main`` in-process: feeds scripted commands, then
    models the parent closing the pipe once a result has been sent."""

    def __init__(self, messages):
        from collections import deque
        self.incoming = deque(messages)
        self.sent = []

    def poll(self, timeout=0):
        if self.incoming:
            return True
        # Parent "hangs up" once the shard has delivered a result.
        return any(message[0] == "done" for message in self.sent)

    def recv(self):
        if not self.incoming:
            raise EOFError
        return self.incoming.popleft()

    def send(self, message):
        self.sent.append(message)


def test_worker_main_loop_in_process():
    """The child-process loop run against a scripted pipe: submit /
    cancel / stats dispatch, decode servicing, heartbeats, and the
    clean EOF exit — all in-process, so it counts toward coverage."""
    from repro.service import worker_main

    rng = np.random.default_rng(12)
    frame = _make_frame(SphereDecoder(qam(4)), 3, 2, 15.0, rng)
    pipe = _ScriptedPipe([("submit", 7, frame),
                          ("cancel", 99),          # unknown id: a no-op
                          ("stats",)])
    worker_main(0, pipe, None, heartbeat_s=1e-4)   # returns on EOF
    kinds = [message[0] for message in pipe.sent]
    assert kinds.count("done") == 1
    assert "stats" in kinds and "beat" in kinds
    done = next(message for message in pipe.sent if message[0] == "done")
    assert done[1] == 0 and done[2]["frame_id"] == 7
    assert done[2]["resolution"] == "completed"
    _assert_identical(done[2]["result"], _reference(frame), False)
    stats_reply = next(message for message in pipe.sent
                       if message[0] == "stats")
    # The stats command is answered from the first pipe drain, before
    # the decode itself has serviced: submitted, not yet completed.
    assert stats_reply[2]["frames_submitted"] == 1


def test_hung_worker_detected_and_frames_replayed():
    """A worker that goes quiet (SIGSTOP: alive but never beating) trips
    the hang detector; its deadline-tagged in-flight frames are replayed
    with shrunken budgets and still complete exactly."""
    import os
    import signal
    import time

    rng = np.random.default_rng(13)
    frames = [_make_frame(SphereDecoder(qam(16)), 5, 3, 12.0, rng)
              for _ in range(3)]
    for frame in frames:
        frame.deadline_s = 3600.0           # replay must shrink, not drop
    with DetectorFarm(1, backend="process", heartbeat_s=0.01,
                      hang_timeout_s=0.08) as farm:
        handles = [farm.submit(frame) for frame in frames]
        os.kill(farm._supervisor._workers[0].process.pid, signal.SIGSTOP)
        time.sleep(0.1)                     # let the quiet period elapse
        farm.drain()
        _check_all(handles, frames)
        assert farm.stats()["restarts"] == [1]
