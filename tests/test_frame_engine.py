"""Frame-level detection engine: bit-exactness and scheduling behaviour.

The frame engine's contract is the strongest in the repository: for every
detector, decoding a whole frame through one scheduler — stacked QR,
cross-subcarrier frontier, slot refill, straggler drain — must return
*bit-identical* symbol decisions, distances and aggregated complexity
counters to the per-subcarrier path (which is itself bit-identical to the
scalar per-vector decoders).  These tests enforce that contract from the
preprocessing up: stacked LAPACK sweeps against per-matrix calls, the
engine against both per-subcarrier and scalar baselines across
enumerators / radii / node budgets, correlated-channel and
heterogeneous-SNR frames that exercise the slot-refill scheduler, and
the receive chain's ``frame_strategy`` switch end to end.
"""

import numpy as np
import pytest

from repro.constellation import qam
from repro.detect import (
    MmseDetector,
    MmseSicDetector,
    SphereDetector,
    ZeroForcingDetector,
)
from repro.frame import (
    SlotScheduler,
    frame_decode_per_subcarrier,
    frame_decode_soft,
    frame_decode_soft_scalar,
    frame_decode_sphere,
    mmse_frame_filters,
    rotate_frame,
    triangularize_frame,
    zf_frame_filters,
)
from repro.frame.engine import DRAIN_THRESHOLD_CAP
from repro.ofdm import estimate_and_triangularize, training_grid
from repro.phy.receiver import detect_uplink
from repro.sphere import (
    KBestDecoder,
    ListSphereDecoder,
    SphereDecoder,
    triangularize,
)
from repro.sphere.counters import ComplexityCounters


def _frame_instance(order, num_tx, num_rx, num_subcarriers, num_symbols,
                    noise_scale=0.15, seed=0, channel_fn=None,
                    noise_per_subcarrier=None):
    """Random frame: per-subcarrier channels + (T, S, na) observations."""
    rng = np.random.default_rng(seed)
    constellation = qam(order)
    if channel_fn is None:
        channels = (rng.standard_normal((num_subcarriers, num_rx, num_tx))
                    + 1j * rng.standard_normal(
                        (num_subcarriers, num_rx, num_tx))) / np.sqrt(2.0)
    else:
        channels = np.stack([channel_fn(s, rng)
                             for s in range(num_subcarriers)])
    sent = rng.integers(0, order, size=(num_symbols, num_subcarriers, num_tx))
    clean = np.einsum("tsc,sac->tsa", constellation.points[sent], channels)
    noise = (rng.standard_normal(clean.shape)
             + 1j * rng.standard_normal(clean.shape))
    if noise_per_subcarrier is not None:
        noise = noise * np.asarray(noise_per_subcarrier)[None, :, None]
    received = clean + noise_scale * noise
    return constellation, channels, received


def _assert_frames_equal(got, ref):
    assert np.array_equal(got.found, ref.found)
    assert np.array_equal(got.symbol_indices, ref.symbol_indices)
    assert np.array_equal(got.distances_sq, ref.distances_sq)
    assert got.counters == ref.counters


# ----------------------------------------------------------------------
# Preprocessing: stacked sweeps vs per-subcarrier numpy.linalg calls
# ----------------------------------------------------------------------

class TestFramePreprocess:
    def setup_method(self):
        _, self.channels, self.received = _frame_instance(16, 4, 4, 12, 6)

    def test_stacked_qr_bit_identical(self):
        q_stack, r_stack = triangularize_frame(self.channels)
        for s in range(self.channels.shape[0]):
            q, r = triangularize(self.channels[s])
            assert np.array_equal(q_stack[s], q)
            assert np.array_equal(r_stack[s], r)

    def test_stacked_rotation_bit_identical(self):
        q_stack, _ = triangularize_frame(self.channels)
        y_hat = rotate_frame(q_stack, self.received)
        for s in range(self.channels.shape[0]):
            expected = self.received[:, s, :] @ np.conj(q_stack[s])
            assert np.array_equal(y_hat[s], expected)

    def test_rank_deficient_subcarrier_rejected(self):
        channels = self.channels.copy()
        channels[3, :, 1] = channels[3, :, 0]
        with pytest.raises(ValueError, match="subcarrier 3"):
            triangularize_frame(channels)

    def test_stacked_zf_filters_match_per_subcarrier(self):
        filters = zf_frame_filters(self.channels)
        for s in range(self.channels.shape[0]):
            assert np.array_equal(filters[s], np.linalg.pinv(self.channels[s]))

    def test_stacked_mmse_filters_match_per_subcarrier(self):
        noise_variance = 0.07
        filters = mmse_frame_filters(self.channels, noise_variance)
        num_tx = self.channels.shape[2]
        for s in range(self.channels.shape[0]):
            matrix = self.channels[s]
            gram = (matrix.conj().T @ matrix
                    + noise_variance * np.eye(num_tx))
            expected = np.linalg.solve(gram, matrix.conj().T)
            assert np.array_equal(filters[s], expected)

    def test_estimation_to_qr_pipeline(self):
        """Time-orthogonal sounding straight into the stacked QR."""
        rng = np.random.default_rng(5)
        from repro.ofdm import WIFI_20MHZ
        training = training_grid(WIFI_20MHZ, rng)
        num_clients, num_rx = 4, 4
        subcarriers = WIFI_20MHZ.num_data_subcarriers
        true = (rng.standard_normal((subcarriers, num_rx, num_clients))
                + 1j * rng.standard_normal(
                    (subcarriers, num_rx, num_clients))) / np.sqrt(2.0)
        grids = np.stack([(true[:, :, c] * training[:, None])
                          for c in range(num_clients)])
        channels, q_stack, r_stack = estimate_and_triangularize(
            grids, training)
        np.testing.assert_allclose(channels, true, atol=1e-12)
        for s in (0, subcarriers // 2, subcarriers - 1):
            q, r = triangularize(channels[s])
            assert np.array_equal(q_stack[s], q)
            assert np.array_equal(r_stack[s], r)


# ----------------------------------------------------------------------
# Slot scheduler
# ----------------------------------------------------------------------

class TestSlotScheduler:
    def test_admit_release_refill(self):
        scheduler = SlotScheduler(num_problems=7, capacity=3)
        lanes, elements = scheduler.admit()
        assert lanes.tolist() == [0, 1, 2]
        assert elements.tolist() == [0, 1, 2]
        assert scheduler.pending == 4
        assert scheduler.free_lanes == 0
        # Nothing free: admit is a no-op.
        lanes, elements = scheduler.admit()
        assert lanes.size == 0 and elements.size == 0
        scheduler.release(np.array([1]))
        lanes, elements = scheduler.admit()
        assert lanes.tolist() == [1]
        assert elements.tolist() == [3]
        scheduler.release(np.array([0, 2, 1]))
        lanes, elements = scheduler.admit()
        assert sorted(lanes.tolist()) == [0, 1, 2]
        assert elements.tolist() == [4, 5, 6]
        assert scheduler.pending == 0
        lanes, elements = scheduler.admit()
        assert elements.size == 0

    def test_capacity_clamped_to_problem_count(self):
        scheduler = SlotScheduler(num_problems=2, capacity=100)
        assert scheduler.capacity == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotScheduler(num_problems=4, capacity=0)
        with pytest.raises(ValueError):
            SlotScheduler(num_problems=-1, capacity=4)


# ----------------------------------------------------------------------
# The frame engine vs per-subcarrier vs scalar
# ----------------------------------------------------------------------

ENGINE_CONFIGS = [
    ("zigzag", True, float("inf"), None),
    ("zigzag", False, float("inf"), None),
    ("shabany", False, float("inf"), None),
    ("hess", False, float("inf"), None),
    ("exhaustive", False, float("inf"), None),
    ("zigzag", True, 3.0, None),
    ("zigzag", True, float("inf"), 30),
    ("shabany", False, 4.0, 60),
]


class TestFrameEngineEquivalence:
    @pytest.mark.parametrize("enumerator,pruning,radius,budget",
                             ENGINE_CONFIGS)
    def test_frame_matches_per_subcarrier_and_scalar(self, enumerator,
                                                     pruning, radius, budget):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=10, num_symbols=7, seed=21)
        decoder = SphereDecoder(constellation, enumerator=enumerator,
                                geometric_pruning=pruning,
                                initial_radius_sq=radius, node_budget=budget)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        frame = frame_decode_sphere(decoder, r_stack, y_hat)
        _assert_frames_equal(frame,
                             frame_decode_per_subcarrier(decoder, r_stack,
                                                         y_hat))
        # Scalar ground truth, slot by slot, counters summed.
        totals = ComplexityCounters()
        for s in range(channels.shape[0]):
            for t in range(received.shape[0]):
                scalar = decoder.decode_triangular(r_stack[s], y_hat[s, t])
                assert scalar.found == frame.found[t, s]
                if scalar.found:
                    assert np.array_equal(frame.symbol_indices[t, s],
                                          scalar.symbol_indices)
                assert frame.distances_sq[t, s] == scalar.distance_sq
                totals.merge(scalar.counters)
        assert frame.counters == totals

    @pytest.mark.parametrize("capacity,drain_threshold", [
        (1, None),     # fully serialised lanes — maximal refill traffic
        (5, 0),        # refill, never drain
        (13, 4),       # refill + drain
        (None, None),  # defaults: whole frame in lockstep
    ])
    def test_capacity_and_drain_do_not_change_results(self, capacity,
                                                      drain_threshold):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=9, num_symbols=6, seed=3)
        decoder = SphereDecoder(constellation)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        reference = frame_decode_per_subcarrier(decoder, r_stack, y_hat)
        got = frame_decode_sphere(decoder, r_stack, y_hat, capacity=capacity,
                                  drain_threshold=drain_threshold)
        _assert_frames_equal(got, reference)

    def test_node_budget_with_lane_refill(self):
        """Budget-stopped searches release their lanes mid-frame; the
        scheduler hands those lanes to queued searches.  The reused
        kernel slots must be fully re-initialised — any stale state would
        show up against the per-subcarrier baseline."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=10, num_symbols=6, seed=61,
            noise_scale=0.35)        # low SNR: budgets actually trip
        decoder = SphereDecoder(constellation, node_budget=20)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        reference = frame_decode_per_subcarrier(decoder, r_stack, y_hat)
        for capacity in (4, 11):
            trace = {}
            got = frame_decode_sphere(decoder, r_stack, y_hat,
                                      capacity=capacity, trace=trace)
            _assert_frames_equal(got, reference)
            assert len(trace["admitted"]) > 1, \
                "capacity below the problem count must trigger refills"

    def test_correlated_channel_packing(self):
        """Similar per-subcarrier R matrices (the correlated-channel
        scenario of the frame engine's motivation): all subcarriers are
        small perturbations of one base channel, so searches finish at
        similar depths and the scheduler packs tightly — results must
        still be exactly the per-subcarrier ones."""
        rng = np.random.default_rng(17)
        base = (rng.standard_normal((4, 4))
                + 1j * rng.standard_normal((4, 4))) / np.sqrt(2.0)

        def channel_fn(s, gen):
            wobble = (gen.standard_normal((4, 4))
                      + 1j * gen.standard_normal((4, 4)))
            return base + 0.05 * wobble

        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=16, num_symbols=8, seed=29,
            channel_fn=channel_fn)
        decoder = SphereDecoder(constellation)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        got = frame_decode_sphere(decoder, r_stack, y_hat, capacity=32)
        _assert_frames_equal(got, frame_decode_per_subcarrier(
            decoder, r_stack, y_hat))

    def test_heterogeneous_snr_straggler_refill(self):
        """A few noisy subcarriers produce heavy-tailed searches; with a
        small lane pool the scheduler must keep refilling freed slots
        (many admit batches) and the drain must fire exactly once, at the
        frame tail — all without changing a single bit of the result."""
        num_subcarriers, num_symbols = 12, 6
        noise_per_subcarrier = np.ones(num_subcarriers)
        noise_per_subcarrier[::4] = 4.0     # every 4th subcarrier is bad
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers, num_symbols, seed=41,
            noise_per_subcarrier=noise_per_subcarrier)
        decoder = SphereDecoder(constellation)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)

        trace = {}
        got = frame_decode_sphere(decoder, r_stack, y_hat, capacity=8,
                                  drain_threshold=3, trace=trace)
        _assert_frames_equal(got, frame_decode_per_subcarrier(
            decoder, r_stack, y_hat))
        admitted = trace["admitted"]
        assert len(admitted) > 1, "small lane pool must trigger refills"
        all_admitted = np.concatenate(admitted)
        assert sorted(all_admitted.tolist()) == list(
            range(num_subcarriers * num_symbols))
        assert 0 < len(trace["drained"]) <= 3

    def test_leaf_events_tighten_radius_monotonically(self):
        """Schnorr–Euchner invariant, now across packed subcarriers: every
        element's successive leaf distances strictly decrease."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=8, num_symbols=6, seed=13)
        decoder = SphereDecoder(constellation)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        trace = {}
        frame_decode_sphere(decoder, r_stack, y_hat, drain_threshold=0,
                            trace=trace)
        last: dict[int, float] = {}
        for elements, distances in trace["leaf_events"]:
            for element, distance in zip(elements.tolist(),
                                         distances.tolist()):
                if element in last:
                    assert distance < last[element]
                last[element] = distance
        assert last, "the engine should have recorded leaf events"

    def test_empty_frame(self):
        constellation = qam(16)
        decoder = SphereDecoder(constellation)
        r_stack = np.zeros((0, 4, 4), dtype=np.complex128)
        y_hat = np.zeros((0, 5, 4), dtype=np.complex128)
        result = frame_decode_sphere(decoder, r_stack, y_hat)
        assert result.symbol_indices.shape == (5, 0, 4)
        assert result.counters == ComplexityCounters()

    def test_decode_frame_honours_loop_strategy(self):
        """``batch_strategy="loop"`` decoders take the per-subcarrier
        reference driver — same results, no frontier."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=6, num_symbols=5, seed=7)
        loop = SphereDecoder(constellation, batch_strategy="loop")
        frontier = SphereDecoder(constellation)
        _assert_frames_equal(loop.decode_frame(channels, received),
                             frontier.decode_frame(channels, received))

    def test_decode_frame_tiny_frame_fallback(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=2, num_symbols=1, seed=7)
        decoder = SphereDecoder(constellation)
        result = decoder.decode_frame(channels, received)
        for s in range(2):
            block = decoder.decode_block(channels[s], received[:, s, :])
            assert np.array_equal(result.symbol_indices[:, s, :],
                                  block.symbol_indices)

    @pytest.mark.slow
    def test_dense_constellation_sweep(self):
        """64-QAM exercises wider kernels through the packed frontier."""
        constellation, channels, received = _frame_instance(
            64, 4, 4, num_subcarriers=8, num_symbols=5, noise_scale=0.08,
            seed=47)
        for enumerator, pruning in [("zigzag", True), ("hess", False)]:
            decoder = SphereDecoder(constellation, enumerator=enumerator,
                                    geometric_pruning=pruning)
            q_stack, r_stack = triangularize_frame(channels)
            y_hat = rotate_frame(q_stack, received)
            got = frame_decode_sphere(decoder, r_stack, y_hat, capacity=16)
            _assert_frames_equal(got, frame_decode_per_subcarrier(
                decoder, r_stack, y_hat))


# ----------------------------------------------------------------------
# The soft (list) frame engine vs the scalar list search
# ----------------------------------------------------------------------

SOFT_NOISE_VARIANCE = 0.045

#: (enumerator, pruning, list_size, clamp, node_budget) — every
#: enumerator, list sizes from minimal to covering, a tight clamp and a
#: node budget that actually truncates searches.
SOFT_CONFIGS = [
    ("zigzag", True, 8, 24.0, None),
    ("zigzag", False, 4, 24.0, None),
    ("shabany", False, 6, 24.0, None),
    ("hess", False, 8, 24.0, None),
    ("exhaustive", False, 16, 6.0, None),
    ("zigzag", True, 2, 24.0, None),
    ("zigzag", True, 8, 24.0, 40),
]


def _assert_soft_frames_equal(got, ref):
    assert np.array_equal(got.llrs, ref.llrs)
    assert np.array_equal(got.symbol_indices, ref.symbol_indices)
    assert np.array_equal(got.symbols, ref.symbols)
    assert np.array_equal(got.list_sizes, ref.list_sizes)
    assert got.counters == ref.counters


class TestSoftFrameEquivalence:
    @pytest.mark.parametrize("enumerator,pruning,list_size,clamp,budget",
                             SOFT_CONFIGS)
    def test_frame_matches_scalar_decode_soft(self, enumerator, pruning,
                                              list_size, clamp, budget):
        """The strongest soft contract: the whole-frame list frontier —
        bounded per-slot leaf lists, worst-member pruning, one drain, one
        frame-wide LLR extraction — returns bit-identical LLRs, list
        membership, hard decisions and counter totals to running the
        scalar list search slot by slot."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=8, num_symbols=5, seed=71)
        decoder = ListSphereDecoder(constellation, list_size=list_size,
                                    geometric_pruning=pruning, clamp=clamp,
                                    enumerator=enumerator, node_budget=budget)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        frame = frame_decode_soft(decoder, r_stack, y_hat,
                                  SOFT_NOISE_VARIANCE)
        _assert_soft_frames_equal(
            frame, frame_decode_soft_scalar(decoder, r_stack, y_hat,
                                            SOFT_NOISE_VARIANCE))
        # Scalar ground truth, slot by slot, counters summed.
        totals = ComplexityCounters()
        for s in range(channels.shape[0]):
            for t in range(received.shape[0]):
                scalar = decoder.decode_soft_triangular(
                    r_stack[s], y_hat[s, t], SOFT_NOISE_VARIANCE)
                assert np.array_equal(frame.llrs[t, s], scalar.llrs)
                assert np.array_equal(frame.symbol_indices[t, s],
                                      scalar.symbol_indices)
                assert frame.list_sizes[t, s] == scalar.list_size_used
                totals.merge(scalar.counters)
        assert frame.counters == totals

    @pytest.mark.parametrize("capacity,drain_threshold", [
        (1, None),     # fully serialised lanes — maximal refill traffic
        (5, 0),        # refill, never drain
        (13, 4),       # refill + drain
        (None, None),  # defaults: whole frame in lockstep
    ])
    def test_capacity_and_drain_do_not_change_results(self, capacity,
                                                      drain_threshold):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=9, num_symbols=6, seed=73)
        decoder = ListSphereDecoder(constellation, list_size=8)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        reference = frame_decode_soft_scalar(decoder, r_stack, y_hat,
                                             SOFT_NOISE_VARIANCE)
        got = frame_decode_soft(decoder, r_stack, y_hat, SOFT_NOISE_VARIANCE,
                                capacity=capacity,
                                drain_threshold=drain_threshold)
        _assert_soft_frames_equal(got, reference)

    def test_heterogeneous_snr_straggler_refill(self):
        """Noisy subcarriers make heavy-tailed list searches; the lane
        refill and the once-per-frame drain must leave every LLR bit
        untouched."""
        num_subcarriers, num_symbols = 10, 5
        noise_per_subcarrier = np.ones(num_subcarriers)
        noise_per_subcarrier[::3] = 3.0
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers, num_symbols, seed=79,
            noise_per_subcarrier=noise_per_subcarrier)
        decoder = ListSphereDecoder(constellation, list_size=8)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        trace = {}
        got = frame_decode_soft(decoder, r_stack, y_hat, SOFT_NOISE_VARIANCE,
                                capacity=8, drain_threshold=3, trace=trace)
        _assert_soft_frames_equal(got, frame_decode_soft_scalar(
            decoder, r_stack, y_hat, SOFT_NOISE_VARIANCE))
        admitted = trace["admitted"]
        assert len(admitted) > 1, "small lane pool must trigger refills"
        all_admitted = np.concatenate(admitted)
        assert sorted(all_admitted.tolist()) == list(
            range(num_subcarriers * num_symbols))
        assert 0 < len(trace["drained"]) <= 3

    def test_radius_tightens_to_worst_list_member(self):
        """The list radius policy, observed through the leaf trace: a
        slot's sphere stays infinite until its list fills, then every
        accepted leaf is at least as good as the current worst member."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=6, num_symbols=4, seed=83)
        list_size = 4
        decoder = ListSphereDecoder(constellation, list_size=list_size)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        trace = {}
        frame_decode_soft(decoder, r_stack, y_hat, SOFT_NOISE_VARIANCE,
                          drain_threshold=0, trace=trace)
        lists: dict[int, list[float]] = {}
        for elements, distances in trace["leaf_events"]:
            for element, distance in zip(elements.tolist(),
                                         distances.tolist()):
                seen = lists.setdefault(element, [])
                if len(seen) >= list_size:
                    assert distance <= max(seen), \
                        "a full list only admits leaves at least as good " \
                        "as its worst member"
                    seen.remove(max(seen))
                seen.append(distance)
        assert lists, "the engine should have recorded leaf events"

    def test_decode_frame_honours_loop_strategy(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=6, num_symbols=5, seed=7)
        loop = ListSphereDecoder(constellation, list_size=8,
                                 batch_strategy="loop")
        frontier = ListSphereDecoder(constellation, list_size=8)
        _assert_soft_frames_equal(
            loop.decode_frame(channels, received, SOFT_NOISE_VARIANCE),
            frontier.decode_frame(channels, received, SOFT_NOISE_VARIANCE))

    def test_decode_batch_matches_loop(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=1, num_symbols=12, seed=89)
        frontier = ListSphereDecoder(constellation, list_size=8)
        loop = ListSphereDecoder(constellation, list_size=8,
                                 batch_strategy="loop")
        q, r = triangularize(channels[0])
        y_hat = received[:, 0, :] @ np.conj(q)
        a = frontier.decode_batch(r, y_hat, SOFT_NOISE_VARIANCE)
        b = loop.decode_batch(r, y_hat, SOFT_NOISE_VARIANCE)
        assert np.array_equal(a.llrs, b.llrs)
        assert np.array_equal(a.symbol_indices, b.symbol_indices)
        assert np.array_equal(a.list_sizes, b.list_sizes)
        assert a.counters == b.counters

    def test_empty_frame(self):
        constellation = qam(16)
        decoder = ListSphereDecoder(constellation, list_size=8)
        r_stack = np.zeros((0, 4, 4), dtype=np.complex128)
        y_hat = np.zeros((0, 5, 4), dtype=np.complex128)
        result = frame_decode_soft(decoder, r_stack, y_hat,
                                   SOFT_NOISE_VARIANCE)
        assert result.llrs.shape == (5, 0, 16)
        assert result.counters == ComplexityCounters()

    @pytest.mark.slow
    def test_dense_constellation_sweep(self):
        """64-QAM exercises wide kernels and large leaf lists through the
        packed soft frontier."""
        constellation, channels, received = _frame_instance(
            64, 4, 4, num_subcarriers=6, num_symbols=4, noise_scale=0.08,
            seed=97)
        for enumerator, pruning in [("zigzag", True), ("hess", False)]:
            decoder = ListSphereDecoder(constellation, list_size=16,
                                        enumerator=enumerator,
                                        geometric_pruning=pruning)
            q_stack, r_stack = triangularize_frame(channels)
            y_hat = rotate_frame(q_stack, received)
            got = frame_decode_soft(decoder, r_stack, y_hat, 0.02,
                                    capacity=16)
            _assert_soft_frames_equal(got, frame_decode_soft_scalar(
                decoder, r_stack, y_hat, 0.02))


class TestSimulateFrameSoftStrategies:
    def test_strategies_agree_end_to_end(self):
        from repro.phy import default_config, rayleigh_source
        from repro.phy.soft_link import simulate_frame_soft

        config = default_config(order=16, payload_bits=184)
        decoder = ListSphereDecoder(config.constellation, list_size=8)
        outcomes = {}
        for strategy in ("frame", "per_subcarrier"):
            source = rayleigh_source(4, 2, rng=31)
            outcomes[strategy] = simulate_frame_soft(
                source(), decoder, config, 12.0,
                rng=np.random.default_rng(5), frame_strategy=strategy)
        frame, per_subcarrier = (outcomes["frame"],
                                 outcomes["per_subcarrier"])
        assert np.array_equal(frame.stream_success,
                              per_subcarrier.stream_success)
        assert frame.detections == per_subcarrier.detections
        assert frame.counters == per_subcarrier.counters

    def test_unknown_strategy_rejected(self):
        from repro.phy import default_config
        from repro.phy.soft_link import simulate_frame_soft

        config = default_config(order=16, payload_bits=184)
        decoder = ListSphereDecoder(config.constellation, list_size=8)
        with pytest.raises(ValueError, match="frame strategy"):
            simulate_frame_soft(np.eye(4), decoder, config, 12.0,
                                frame_strategy="bogus")

    def test_engine_knobs_plumbed_and_validated(self):
        from repro.phy import default_config, rayleigh_source
        from repro.phy.soft_link import simulate_frame_soft

        config = default_config(order=16, payload_bits=184)
        decoder = ListSphereDecoder(config.constellation, list_size=8)
        outcomes = []
        for knobs in ({}, {"capacity": 5, "drain_threshold": 2}):
            source = rayleigh_source(4, 2, rng=31)
            outcomes.append(simulate_frame_soft(
                source(), decoder, config, 12.0,
                rng=np.random.default_rng(5), **knobs))
        # The knobs trade wall-clock only: results are bit-identical.
        assert np.array_equal(outcomes[0].stream_success,
                              outcomes[1].stream_success)
        assert outcomes[0].counters == outcomes[1].counters

        with pytest.raises(ValueError, match="frame frontier"):
            simulate_frame_soft(np.eye(4), decoder, config, 12.0,
                                frame_strategy="per_subcarrier", capacity=4)
        loop_decoder = ListSphereDecoder(config.constellation, list_size=8,
                                         batch_strategy="loop")
        with pytest.raises(ValueError, match="frame frontier"):
            simulate_frame_soft(np.eye(4), loop_decoder, config, 12.0,
                                capacity=4)


# ----------------------------------------------------------------------
# K-best cross-subcarrier expansion
# ----------------------------------------------------------------------

class TestKBestFrame:
    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_frame_matches_per_subcarrier(self, k):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=9, num_symbols=6, seed=33)
        decoder = KBestDecoder(constellation, k=k)
        frame = decoder.decode_frame(channels, received)
        totals = ComplexityCounters()
        for s in range(channels.shape[0]):
            block = decoder.decode_block(channels[s], received[:, s, :])
            assert np.array_equal(frame.symbol_indices[:, s, :],
                                  block.symbol_indices)
            assert np.array_equal(frame.distances_sq[:, s],
                                  block.distances_sq)
            totals.merge(block.counters)
        assert frame.counters == totals


# ----------------------------------------------------------------------
# The receive chain's strategy switch, across the detector zoo
# ----------------------------------------------------------------------

def _zoo(constellation):
    from repro.detect import ExhaustiveMLDetector, HybridDetector
    from repro.sphere import geosphere_decoder
    return [
        ZeroForcingDetector(constellation),
        MmseDetector(constellation),
        MmseSicDetector(constellation),
        SphereDetector(geosphere_decoder(constellation)),
        SphereDetector(SphereDecoder(constellation, enumerator="hess",
                                     geometric_pruning=False)),
        SphereDetector(KBestDecoder(constellation, k=8)),
        ExhaustiveMLDetector(constellation),
        HybridDetector(constellation),
    ]


class TestDetectUplinkStrategies:
    def test_all_detectors_agree_across_strategies(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=8, num_symbols=5, seed=51)
        noise_variance = 0.05
        for detector in _zoo(constellation):
            frame = detect_uplink(channels, received, detector,
                                  noise_variance, frame_strategy="frame")
            per_subcarrier = detect_uplink(channels, received, detector,
                                           noise_variance,
                                           frame_strategy="per_subcarrier")
            assert np.array_equal(frame.symbol_indices,
                                  per_subcarrier.symbol_indices), \
                f"{detector.name} differs across frame strategies"
            assert frame.detections == per_subcarrier.detections
            if per_subcarrier.counters is None:
                assert frame.counters is None
            else:
                assert frame.counters == per_subcarrier.counters

    def test_sphere_counters_are_frame_level_totals(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=6, num_symbols=5, seed=53)
        detector = SphereDetector(SphereDecoder(constellation))
        detection = detect_uplink(channels, received, detector, 0.05)
        # The adapter mirrors the frame totals it handed back.
        assert detection.counters is detector.last_block_counters
        assert detector.last_block_detections == 30

    def test_unknown_strategy_rejected(self):
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=3, num_symbols=2, seed=55)
        with pytest.raises(ValueError, match="frame strategy"):
            detect_uplink(channels, received,
                          ZeroForcingDetector(constellation), 0.05,
                          frame_strategy="bogus")

    def test_default_drain_threshold_is_capped(self):
        """Large frames drain at the absolute cap, not at N // 6."""
        constellation, channels, received = _frame_instance(
            16, 4, 4, num_subcarriers=36, num_symbols=8, seed=57)
        decoder = SphereDecoder(constellation)
        q_stack, r_stack = triangularize_frame(channels)
        y_hat = rotate_frame(q_stack, received)
        trace = {}
        got = frame_decode_sphere(decoder, r_stack, y_hat, trace=trace)
        assert len(trace.get("drained", [])) <= DRAIN_THRESHOLD_CAP
        _assert_frames_equal(got, frame_decode_per_subcarrier(
            decoder, r_stack, y_hat))
