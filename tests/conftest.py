"""Shared pytest configuration for the test suite.

Registers the ``slow`` marker used by the long randomized equivalence
sweeps so CI (and impatient humans) can deselect them with::

    pytest -m "not slow"

The full suite, slow sweeps included, remains the tier-1 gate.
"""

from __future__ import annotations


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long randomized equivalence sweeps; deselect with "
        "-m \"not slow\"")
