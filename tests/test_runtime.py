"""Streaming runtime: bit-exactness, admission-order invariance, API.

The runtime contract is that pipelining frames through the resident
frontier engine is *pure scheduling*: per-frame results and
``ComplexityCounters`` must be bit-identical to standalone
``decode_frame`` for every admission order, in-flight budget, lane
capacity and drain threshold.  The sweeps here mix hard and soft frames,
constellations, stream counts and SNRs in one runtime, and the
hypothesis property randomises the interleaving itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import awgn, noise_variance_for_snr, rayleigh_channels
from repro.coding import VITERBI_STRATEGIES, WIFI_CODE
from repro.constellation import qam
from repro.phy import (
    PhyConfig,
    build_uplink_frame,
    random_payloads,
    recover_uplink,
    recover_uplink_soft,
)
from repro.phy.receiver import detect_uplink
from repro.detect import SphereDetector, ZeroForcingDetector
from repro.runtime import (
    AdmissionQueue,
    CellWorkload,
    FrameJob,
    FrameRequest,
    RuntimeStats,
    UplinkRuntime,
    synthetic_cell_trace,
)
from repro.runtime.cell import ofdm_for_subcarriers
from repro.sphere import KBestDecoder, ListSphereDecoder, SphereDecoder


def _make_frame(decoder, num_subcarriers, num_symbols, snr_db, rng,
                soft=False, num_rx=4):
    order = len(decoder.constellation.points)
    num_tx = min(4, num_rx)
    channels = rayleigh_channels(num_subcarriers, num_rx, num_tx, rng)
    sent = rng.integers(0, order,
                        size=(num_symbols, num_subcarriers, num_tx))
    clean = np.einsum("tsc,sac->tsa", decoder.constellation.points[sent],
                      channels)
    noise_variance = float(np.mean(
        [noise_variance_for_snr(channels[s], snr_db)
         for s in range(num_subcarriers)]))
    received = clean + awgn(clean.shape, noise_variance, rng)
    return FrameRequest(channels=channels, received=received,
                        decoder=decoder,
                        noise_variance=noise_variance if soft else None)


def _coded_config(order, payload_bits=120, num_subcarriers=8, coded=True):
    """A small coded PhyConfig whose numerology matches the test traces
    (8 data subcarriers keeps the interleaver block a multiple of 16)."""
    return PhyConfig(constellation=qam(order),
                     code=WIFI_CODE if coded else None,
                     ofdm=ofdm_for_subcarriers(num_subcarriers),
                     payload_bits=payload_bits)


def _make_coded_frame(config, decoder, snr_db, rng, soft=False, num_rx=4,
                      num_clients=2):
    """Real coded traffic over a Rayleigh channel: payloads through the
    transmit chain, then a FrameRequest carrying the config and pad
    count so the runtime decodes bits."""
    payloads = random_payloads(num_clients, config, rng)
    uplink = build_uplink_frame(payloads, config)
    symbols = uplink.symbol_tensor                 # (T, S, nc)
    num_subcarriers = symbols.shape[1]
    channels = rayleigh_channels(num_subcarriers, num_rx, num_clients, rng)
    clean = np.einsum("tsc,sac->tsa", symbols, channels)
    noise_variance = float(np.mean(
        [noise_variance_for_snr(channels[s], snr_db)
         for s in range(num_subcarriers)]))
    received = clean + awgn(clean.shape, noise_variance, rng)
    return FrameRequest(channels=channels, received=received,
                        decoder=decoder,
                        noise_variance=noise_variance if soft else None,
                        config=config,
                        num_pad_bits=uplink.streams[0].num_pad_bits,
                        metadata={"payloads": payloads})


def _assert_decisions_match_standalone(result, frame):
    """The coded-chain contract: runtime decisions equal the standalone
    recover path run on the same detections."""
    if frame.noise_variance is None:
        expected = recover_uplink(result.symbol_indices,
                                  frame.num_pad_bits, frame.config)
    else:
        expected = recover_uplink_soft(result.llrs, frame.num_pad_bits,
                                       frame.config)
    assert result.decisions is not None
    assert len(result.decisions) == len(expected)
    for got, want in zip(result.decisions, expected):
        assert got.crc_ok == want.crc_ok
        assert np.array_equal(got.payload_bits, want.payload_bits)


def _reference(frame):
    if frame.noise_variance is None:
        return frame.decoder.decode_frame(frame.channels, frame.received)
    return frame.decoder.decode_frame(frame.channels, frame.received,
                                      frame.noise_variance)


def _assert_identical(result, reference, soft):
    if soft:
        assert np.array_equal(result.llrs, reference.llrs)
        assert np.array_equal(result.symbol_indices,
                              reference.symbol_indices)
        assert np.array_equal(result.list_sizes, reference.list_sizes)
    else:
        assert np.array_equal(result.found, reference.found)
        assert np.array_equal(result.symbol_indices,
                              reference.symbol_indices)
        assert np.array_equal(result.distances_sq, reference.distances_sq)
    assert result.counters == reference.counters


# ----------------------------------------------------------------------
# Bit-exactness sweeps
# ----------------------------------------------------------------------

def test_mixed_stream_bit_identical_to_decode_frame():
    """One runtime, interleaved hard/soft frames across constellations,
    stream counts and enumerators — every frame equals ``decode_frame``."""
    rng = np.random.default_rng(1)
    decoders = [
        (SphereDecoder(qam(16)), False),
        (SphereDecoder(qam(4), enumerator="shabany"), False),
        (SphereDecoder(qam(16), enumerator="hess", geometric_pruning=False),
         False),
        (ListSphereDecoder(qam(4), list_size=6), True),
        (ListSphereDecoder(qam(16), list_size=4, enumerator="shabany"),
         True),
    ]
    frames = []
    for repeat in range(2):
        for decoder, soft in decoders:
            frames.append(_make_frame(decoder, 5, 3, 18.0 + 2 * repeat,
                                      rng, soft=soft))
    runtime = UplinkRuntime(capacity=24, max_in_flight=6)
    handles = [runtime.submit(frame) for frame in frames]
    done = runtime.drain()
    assert runtime.idle
    assert len(done) == len(frames)
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)


@pytest.mark.parametrize("capacity,drain_threshold",
                         [(3, None), (16, 0), (64, 5)])
def test_knob_sweep_bit_identical(capacity, drain_threshold):
    """Tiny lane pools force heavy cross-frame packing; zero drain keeps
    everything lockstep; both stay bit-identical."""
    rng = np.random.default_rng(2)
    decoder = SphereDecoder(qam(16))
    soft_decoder = ListSphereDecoder(qam(16), list_size=5)
    frames = [_make_frame(decoder, 4, 2, 20.0, rng),
              _make_frame(soft_decoder, 3, 3, 17.0, rng, soft=True),
              _make_frame(decoder, 6, 2, 23.0, rng)]
    runtime = UplinkRuntime(capacity=capacity,
                            drain_threshold=drain_threshold,
                            max_in_flight=len(frames))
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)


def test_node_budget_frames_stream_identically():
    """Budget-stopped searches finish mid-stream and keep their lanes
    recyclable; results still match the budgeted ``decode_frame``."""
    rng = np.random.default_rng(3)
    decoder = SphereDecoder(qam(16), node_budget=25)
    soft_decoder = ListSphereDecoder(qam(16), list_size=8, node_budget=40)
    frames = [_make_frame(decoder, 5, 3, 12.0, rng),
              _make_frame(soft_decoder, 5, 2, 12.0, rng, soft=True)]
    runtime = UplinkRuntime(capacity=8, max_in_flight=2)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_admission_order_invariance(data):
    """The ISSUE-5 property, extended with ISSUE-7's QoS axes: any
    submission permutation, in-flight budget, lane policy and priority
    mix — with generous never-tripping deadlines sprinkled in — yields
    per-frame results and counters bit-identical to sequential
    ``decode_frame``."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1),
                                          label="seed"))
    hard = SphereDecoder(qam(4))
    soft = ListSphereDecoder(qam(4), list_size=4)
    num_frames = data.draw(st.integers(2, 5), label="num_frames")
    frames = []
    for _ in range(num_frames):
        is_soft = bool(rng.integers(2))
        frame = _make_frame(soft if is_soft else hard,
                            int(rng.integers(2, 5)),
                            int(rng.integers(1, 4)),
                            float(rng.uniform(8.0, 20.0)), rng,
                            soft=is_soft, num_rx=3)
        # QoS tags must never change results: random priority classes,
        # and deadlines so generous they are always comfortably met.
        frame.priority = int(rng.integers(0, 3))
        if bool(rng.integers(2)):
            frame.deadline_s = 3600.0
        frames.append(frame)
    order = data.draw(st.permutations(range(num_frames)), label="order")
    budget = data.draw(st.integers(1, num_frames), label="max_in_flight")
    capacity = data.draw(st.integers(2, 32), label="capacity")
    lane_policy = data.draw(st.sampled_from(["deadline", "fifo"]),
                            label="lane_policy")
    runtime = UplinkRuntime(capacity=capacity, max_in_flight=budget,
                            lane_policy=lane_policy)
    handles = {}
    for index in order:
        handles[index] = runtime.submit(frames[index])
        # Random poll interleaving between submissions.
        if data.draw(st.booleans(), label="poll"):
            runtime.poll(max_ticks=data.draw(st.integers(1, 6),
                                             label="ticks"))
    runtime.drain()
    for index, frame in enumerate(frames):
        assert not handles[index].degraded
        _assert_identical(handles[index].result(), _reference(frame),
                          frame.noise_variance is not None)


# ----------------------------------------------------------------------
# Session semantics: backpressure, poll, handles
# ----------------------------------------------------------------------

def test_backpressure_bounds_in_flight():
    rng = np.random.default_rng(4)
    decoder = SphereDecoder(qam(4))
    frames = [_make_frame(decoder, 3, 2, 15.0, rng) for _ in range(6)]
    runtime = UplinkRuntime(capacity=4, max_in_flight=2)
    for frame in frames:
        runtime.submit(frame)
        assert runtime.in_flight <= 2
    done = runtime.drain()
    assert len(done) == 6
    assert runtime.idle
    assert runtime.stats.frames_completed == 6


def test_poll_returns_completions_incrementally():
    rng = np.random.default_rng(5)
    decoder = SphereDecoder(qam(4))
    frames = [_make_frame(decoder, 3, 2, 15.0, rng) for _ in range(3)]
    runtime = UplinkRuntime(capacity=32, max_in_flight=3)
    handles = [runtime.submit(frame) for frame in frames]
    collected = []
    for _ in range(10_000):
        collected.extend(runtime.poll())
        if len(collected) == 3:
            break
    assert {handle.frame_id for handle in collected} == {
        handle.frame_id for handle in handles}
    assert all(handle.done and handle.latency_s >= 0.0
               for handle in collected)
    assert runtime.poll() == []


def test_handle_errors_and_empty_frame():
    rng = np.random.default_rng(6)
    decoder = SphereDecoder(qam(4))
    runtime = UplinkRuntime(capacity=4)
    frame = _make_frame(decoder, 2, 2, 15.0, rng)
    handle = runtime.submit(frame)
    with pytest.raises(ValueError):
        handle.result()
    runtime.drain()
    assert handle.result() is not None

    # Degenerate frames: zero OFDM symbols complete immediately, hard
    # and soft alike, with the same empty results ``decode_frame`` builds.
    empty = FrameRequest(channels=frame.channels,
                         received=frame.received[:0], decoder=decoder)
    empty_soft = FrameRequest(channels=frame.channels,
                              received=frame.received[:0],
                              decoder=ListSphereDecoder(qam(4), list_size=4),
                              noise_variance=0.1)
    empty_handle = runtime.submit(empty)
    empty_soft_handle = runtime.submit(empty_soft)
    done = runtime.poll()
    assert empty_handle in done and empty_handle.done
    assert empty_soft_handle in done
    assert empty_handle.result().counters.ped_calcs == 0
    assert empty_soft_handle.result().llrs.shape == (0, 2, 8)

    with pytest.raises(ValueError):
        runtime.submit(FrameRequest(channels=frame.channels,
                                    received=frame.received,
                                    decoder=KBestDecoder(qam(4), k=4)))
    with pytest.raises(ValueError):
        # Soft frames need a noise variance.
        runtime.submit(FrameRequest(
            channels=frame.channels, received=frame.received,
            decoder=ListSphereDecoder(qam(4), list_size=4)))
    with pytest.raises(ValueError):
        UplinkRuntime(max_in_flight=0)


def test_admission_queue_tags_and_fifo():
    rng = np.random.default_rng(7)
    decoder = SphereDecoder(qam(4))
    jobs = [FrameJob(i, _make_frame(decoder, 2, 2, 15.0, rng))
            for i in range(2)]
    queue = AdmissionQueue()
    for job in jobs:
        queue.push(job)
    assert queue.pending == 8
    batches = queue.take(5)
    # Frame-FIFO across the boundary: all of frame 0, then frame 1's head.
    assert [(job.frame_id, list(elements)) for job, elements in batches] \
        == [(0, [0, 1, 2, 3]), (1, [0])]
    assert queue.pending == 3
    assert [(job.frame_id, list(elements))
            for job, elements in queue.take(99)] == [(1, [1, 2, 3])]
    assert queue.take(4) == []


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------

def test_stats_report_consistency():
    rng = np.random.default_rng(8)
    decoder = SphereDecoder(qam(16))
    frames = [_make_frame(decoder, 4, 3, 20.0, rng) for _ in range(4)]
    runtime = UplinkRuntime(capacity=16, max_in_flight=2)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    stats = runtime.stats
    summary = stats.summary()
    assert summary["frames_completed"] == 4
    assert summary["searches_completed"] == 4 * 4 * 3
    assert summary["frames_per_second"] > 0.0
    assert 0.0 < summary["mean_lane_occupancy"] <= 1.0
    percentiles = stats.latency_percentiles((50, 90, 99))
    assert percentiles[50] <= percentiles[90] <= percentiles[99]
    assert summary["visited_nodes"] == sum(
        handle.result().counters.visited_nodes for handle in handles)
    # ISSUE-7 regression: an empty window returns an empty dict — a
    # fresh runtime (or an unseen priority class) must be probeable
    # without raising.
    assert UplinkRuntime().stats.latency_percentiles() == {}
    assert stats.latency_percentiles(priority=7) == {}


# ----------------------------------------------------------------------
# Cell workload generator
# ----------------------------------------------------------------------

def test_cell_workload_mixes_traffic_and_streams_identically():
    trace = synthetic_cell_trace(4, 6, 4, 4, rng=9)
    workload = CellWorkload(trace, num_users=6, group_size=4,
                            num_symbols=2, soft_fraction=0.4,
                            snr_window_db=6.0, list_size=4, rng=10)
    frames = workload.frames(12)
    arrivals = [frame.metadata["arrival_s"] for frame in frames]
    assert all(later > earlier
               for earlier, later in zip(arrivals, arrivals[1:]))
    orders = {frame.metadata["order"] for frame in frames}
    kinds = {frame.metadata["kind"] for frame in frames}
    assert len(orders) >= 2, "SNR span should mix constellations"
    assert kinds == {"hard", "soft"}
    groups = {frame.metadata["group"] for frame in frames}
    assert len(groups) > 1, "the TDMA schedule should rotate groups"
    stream_counts = {frame.channels.shape[2] for frame in frames}
    assert len(stream_counts) > 1, (
        "the SNR window should shrink some serving groups (heterogeneous "
        "MIMO orders)")
    assert all(frame.channels.shape[2] >= 2 for frame in frames)

    runtime = UplinkRuntime(capacity=48, max_in_flight=4)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)


def test_cell_workload_validation():
    trace = synthetic_cell_trace(1, 2, 4, 2, rng=0)
    with pytest.raises(ValueError):
        CellWorkload(trace, group_size=4)          # trace too narrow
    with pytest.raises(ValueError):
        CellWorkload(trace, num_users=1, group_size=2)
    with pytest.raises(ValueError):
        CellWorkload(trace, group_size=2, soft_fraction=1.5)


# ----------------------------------------------------------------------
# The coded chain through the runtime (ISSUE-6 tentpole)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("strategy", VITERBI_STRATEGIES)
def test_coded_decisions_match_standalone_recover(strategy):
    """Frames submitted with a PhyConfig resolve with per-stream payload
    bits and CRC verdicts bit-identical to ``recover_uplink`` /
    ``recover_uplink_soft`` on the same detections — under both trellis
    strategies, with an unconfigured frame mixed in."""
    rng = np.random.default_rng(12)
    config4 = _coded_config(4, payload_bits=72)
    config16 = _coded_config(16, payload_bits=88)
    hard4 = SphereDecoder(qam(4))
    soft4 = ListSphereDecoder(qam(4), list_size=4)
    hard16 = SphereDecoder(qam(16))
    frames = [
        _make_coded_frame(config4, hard4, 27.0, rng),
        _make_coded_frame(config4, soft4, 27.0, rng, soft=True),
        _make_coded_frame(config16, hard16, 30.0, rng, num_clients=3),
        _make_frame(hard4, 4, 2, 15.0, rng),       # detection-only frame
    ]
    runtime = UplinkRuntime(capacity=24, max_in_flight=4,
                            viterbi_strategy=strategy)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for frame, handle in zip(frames[:3], handles[:3]):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)
        _assert_decisions_match_standalone(handle.result(), frame)
    assert handles[3].result().decisions is None

    # At these SNRs the seeded channels decode cleanly: the delivered
    # payloads are the transmitted ones and the goodput counters add up.
    for frame, handle in zip(frames[:3], handles[:3]):
        for payload, decision in zip(frame.metadata["payloads"],
                                     handle.result().decisions):
            assert decision.crc_ok
            assert np.array_equal(decision.payload_bits, payload)
    stats = runtime.stats
    assert stats.streams_decoded == 2 + 2 + 3
    assert stats.streams_crc_ok == stats.streams_decoded
    assert stats.payload_bits_ok == 72 * 2 + 72 * 2 + 88 * 3
    assert stats.goodput_bps() > 0.0
    assert stats.crc_failure_rate() == 0.0


def test_uncoded_config_frames_decode_without_trellis():
    """config.code=None hard frames skip the Viterbi sweep but still
    resolve with CRC-judged decisions identical to recover_uplink."""
    rng = np.random.default_rng(13)
    config = _coded_config(4, payload_bits=72, coded=False)
    frame = _make_coded_frame(config, SphereDecoder(qam(4)), 30.0, rng)
    runtime = UplinkRuntime(capacity=16)
    handle = runtime.submit(frame)
    runtime.drain()
    _assert_decisions_match_standalone(handle.result(), frame)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_coded_admission_order_invariance(data):
    """The ISSUE-6 acceptance sweep: any admission order, in-flight
    budget and trellis strategy yields decisions bit-identical to the
    standalone recover chain, coded hard/soft frames interleaved."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1),
                                          label="seed"))
    config = _coded_config(4, payload_bits=64)
    hard = SphereDecoder(qam(4))
    soft = ListSphereDecoder(qam(4), list_size=4)
    num_frames = data.draw(st.integers(2, 4), label="num_frames")
    frames = []
    for _ in range(num_frames):
        is_soft = bool(rng.integers(2))
        frames.append(_make_coded_frame(
            config, soft if is_soft else hard,
            float(rng.uniform(12.0, 24.0)), rng, soft=is_soft,
            num_rx=3, num_clients=2))
    order = data.draw(st.permutations(range(num_frames)), label="order")
    budget = data.draw(st.integers(1, num_frames), label="max_in_flight")
    strategy = data.draw(st.sampled_from(VITERBI_STRATEGIES),
                         label="strategy")
    runtime = UplinkRuntime(capacity=data.draw(st.integers(2, 24),
                                               label="capacity"),
                            max_in_flight=budget,
                            viterbi_strategy=strategy)
    handles = {}
    for index in order:
        handles[index] = runtime.submit(frames[index])
        if data.draw(st.booleans(), label="poll"):
            runtime.poll(max_ticks=data.draw(st.integers(1, 6),
                                             label="ticks"))
    runtime.drain()
    for index, frame in enumerate(frames):
        _assert_identical(handles[index].result(), _reference(frame),
                          frame.noise_variance is not None)
        _assert_decisions_match_standalone(handles[index].result(), frame)


def test_coded_frame_request_validation():
    """Config mistakes fail loudly at submission, not mid-decode."""
    rng = np.random.default_rng(14)
    config = _coded_config(4, payload_bits=72)
    frame = _make_coded_frame(config, SphereDecoder(qam(4)), 25.0, rng)
    runtime = UplinkRuntime(capacity=8)

    with pytest.raises(ValueError):
        # Config constellation differs from the decoder's.
        runtime.submit(FrameRequest(
            channels=frame.channels, received=frame.received,
            decoder=SphereDecoder(qam(4)),
            config=_coded_config(16), num_pad_bits=frame.num_pad_bits))
    with pytest.raises(ValueError):
        # Soft decoding without a convolutional code.
        runtime.submit(FrameRequest(
            channels=frame.channels, received=frame.received,
            decoder=ListSphereDecoder(qam(4), list_size=4),
            noise_variance=0.1,
            config=_coded_config(4, coded=False), num_pad_bits=0))
    with pytest.raises(ValueError):
        # 6 subcarriers cannot carry whole interleaver blocks of the
        # 8-subcarrier numerology.
        runtime.submit(FrameRequest(
            channels=frame.channels[:6], received=frame.received[:, :6, :],
            decoder=SphereDecoder(qam(4)), config=config, num_pad_bits=0))
    with pytest.raises(ValueError):
        # Pad count at/above the per-stream coded length.
        runtime.submit(FrameRequest(
            channels=frame.channels, received=frame.received,
            decoder=SphereDecoder(qam(4)), config=config,
            num_pad_bits=10**6))
    with pytest.raises(ValueError):
        UplinkRuntime(viterbi_strategy="vector")


def test_cell_workload_coded_traffic_decodes():
    trace = synthetic_cell_trace(3, 8, 4, 4, rng=15)
    workload = CellWorkload(trace, num_users=6, group_size=4,
                            soft_fraction=0.5, snr_span_db=(18.0, 30.0),
                            list_size=4, coded=True, payload_bits=56,
                            rng=16)
    frames = workload.frames(6)
    assert all(frame.config is not None for frame in frames)
    assert all("payloads" in frame.metadata for frame in frames)
    runtime = UplinkRuntime(capacity=48, max_in_flight=3)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)
        _assert_decisions_match_standalone(handle.result(), frame)
    assert runtime.stats.streams_decoded == sum(
        frame.channels.shape[2] for frame in frames)

    narrow = synthetic_cell_trace(1, 6, 4, 4, rng=0)
    with pytest.raises(ValueError, match="divisible by 8"):
        CellWorkload(narrow, coded=True)


# ----------------------------------------------------------------------
# Telemetry degenerate cases (ISSUE-6 satellite)
# ----------------------------------------------------------------------

def test_stats_zero_frames_report_zero_rates():
    stats = RuntimeStats()
    assert stats.frames_per_second() == 0.0
    assert stats.goodput_bps() == 0.0
    assert stats.crc_failure_rate() == 0.0
    summary = stats.summary()
    assert summary["frames_per_second"] == 0.0
    assert summary["goodput_bits_per_second"] == 0.0
    assert summary["crc_failure_rate"] == 0.0
    assert "latency_percentiles_s" not in summary


def test_stats_zero_width_interval_reports_inf_not_zero():
    """One frame under a frozen clock: the busy interval is zero-width,
    and a positive completion count over it must read as ``inf``, never
    an understating 0.0."""
    rng = np.random.default_rng(17)
    config = _coded_config(4, payload_bits=40)
    frame = _make_coded_frame(config, SphereDecoder(qam(4)), 30.0, rng)
    runtime = UplinkRuntime(capacity=16, clock=lambda: 42.0)
    handle = runtime.submit(frame)
    runtime.drain()
    stats = runtime.stats
    assert handle.latency_s == 0.0
    assert stats.elapsed_s == 0.0
    assert stats.frames_per_second() == float("inf")
    assert stats.payload_bits_ok > 0
    assert stats.goodput_bps() == float("inf")
    summary = stats.summary()
    assert summary["frames_per_second"] == float("inf")
    assert summary["latency_percentiles_s"][99] == 0.0


# ----------------------------------------------------------------------
# Knob plumbing through the public entry points (ISSUE-5 satellite)
# ----------------------------------------------------------------------

def test_detect_uplink_forwards_engine_knobs():
    rng = np.random.default_rng(11)
    decoder = SphereDecoder(qam(16))
    frame = _make_frame(decoder, 4, 3, 20.0, rng)
    detector = SphereDetector(decoder)
    default = detect_uplink(frame.channels, frame.received, detector, 0.1)
    tuned = detect_uplink(frame.channels, frame.received, detector, 0.1,
                          capacity=3, drain_threshold=1)
    assert np.array_equal(default.symbol_indices, tuned.symbol_indices)
    assert default.counters == tuned.counters

    with pytest.raises(ValueError):
        detect_uplink(frame.channels, frame.received, detector, 0.1,
                      frame_strategy="per_subcarrier", capacity=3)
    with pytest.raises(ValueError):
        detect_uplink(frame.channels, frame.received,
                      SphereDetector(KBestDecoder(qam(16), k=4)), 0.1,
                      capacity=3)
    with pytest.raises(ValueError):
        # Linear detectors run no frontier: clean rejection, not a
        # TypeError from an unexpected keyword.
        detect_uplink(frame.channels, frame.received,
                      ZeroForcingDetector(qam(16)), 0.1, capacity=3)
    with pytest.raises(ValueError):
        # Loop-strategy decoders never see the knobs either — reject
        # instead of silently dropping them.
        detect_uplink(frame.channels, frame.received,
                      SphereDetector(SphereDecoder(qam(16),
                                                   batch_strategy="loop")),
                      0.1, capacity=3)


# ----------------------------------------------------------------------
# Demand-grown kernel pools (ISSUE-8 satellite)
# ----------------------------------------------------------------------

def test_demand_grown_pools_are_invisible_to_results():
    """A runtime that starts with a tiny lane allocation grows its pools
    geometrically under load — and the growth must be pure capacity:
    results and counters bit-identical to an eagerly-allocated runtime,
    for hard and soft pools alike."""
    rng = np.random.default_rng(21)
    decoder = SphereDecoder(qam(16))
    soft_decoder = ListSphereDecoder(qam(16), list_size=4)
    frames = [_make_frame(decoder, 8, 3, 14.0, rng),
              _make_frame(soft_decoder, 6, 3, 14.0, rng, soft=True),
              _make_frame(decoder, 8, 2, 20.0, rng)]
    runtime = UplinkRuntime(capacity=64, max_in_flight=3, initial_lanes=2)
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    pools = list(runtime._engine._pools.values())
    assert pools, "the sweep must have instantiated kernel pools"
    assert all(pool.allocated > 2 for pool in pools), (
        "the workload must actually force growth")
    assert all(pool.allocated <= 64 for pool in pools)
    for frame, handle in zip(frames, handles):
        _assert_identical(handle.result(), _reference(frame),
                          frame.noise_variance is not None)

    with pytest.raises(ValueError):
        UplinkRuntime(initial_lanes=0)


# ----------------------------------------------------------------------
# The detector farm inherits the contract (ISSUE-8 tentpole)
# ----------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_farm_shard_counts_bit_identical(data):
    """The ISSUE-8 acceptance sweep: for shard counts {1, 2, 4}, any
    admission order, either lane policy and a random QoS mix, every
    frame decoded by the farm is bit-identical to standalone
    ``decode_frame`` — results, LLRs and counters."""
    from repro.service import DetectorFarm

    rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1),
                                          label="seed"))
    decoders = [(SphereDecoder(qam(4)), False),
                (SphereDecoder(qam(16)), False),
                (ListSphereDecoder(qam(4), list_size=4), True)]
    num_frames = data.draw(st.integers(2, 5), label="num_frames")
    frames = []
    for _ in range(num_frames):
        decoder, soft = decoders[int(rng.integers(len(decoders)))]
        frame = _make_frame(decoder, int(rng.integers(2, 5)),
                            int(rng.integers(1, 3)),
                            float(rng.uniform(10.0, 20.0)), rng,
                            soft=soft, num_rx=3)
        frame.priority = int(rng.integers(0, 3))
        if bool(rng.integers(2)):
            frame.deadline_s = 3600.0
        frames.append(frame)
    order = data.draw(st.permutations(range(num_frames)), label="order")
    num_shards = data.draw(st.sampled_from([1, 2, 4]), label="num_shards")
    lane_policy = data.draw(st.sampled_from(["deadline", "fifo"]),
                            label="lane_policy")
    farm = DetectorFarm(num_shards, backend="inline",
                        runtime_kwargs={
                            "capacity": data.draw(st.integers(2, 24),
                                                  label="capacity"),
                            "lane_policy": lane_policy})
    with farm:
        handles = {}
        for index in order:
            handles[index] = farm.submit(frames[index])
            if data.draw(st.booleans(), label="pump"):
                farm.pump()
        farm.drain()
        for index, frame in enumerate(frames):
            assert handles[index].resolution == "completed"
            _assert_identical(handles[index].result(), _reference(frame),
                              frame.noise_variance is not None)
