"""Tests for user selection and TDMA scheduling."""

import numpy as np
import pytest

from repro.channel import condition_number, rayleigh_channel
from repro.mac import (
    TdmaSchedule,
    round_robin_groups,
    select_best_conditioned,
    select_users_in_snr_range,
    select_users_random,
)


class TestSnrRangeSelection:
    def test_window_membership(self):
        snrs = np.array([10.0, 14.0, 19.0, 21.0, 25.0, 31.0])
        chosen = select_users_in_snr_range(snrs, target_db=20.0, window_db=5.0)
        assert list(chosen) == [2, 3, 4]

    def test_paper_ranges(self):
        """15/20/25 +-5 dB: each range keeps its own users."""
        snrs = np.array([12.0, 17.0, 22.0, 27.0])
        assert list(select_users_in_snr_range(snrs, 15.0)) == [0, 1]
        assert list(select_users_in_snr_range(snrs, 25.0)) == [2, 3]

    def test_empty_selection_possible(self):
        assert select_users_in_snr_range([0.0], 30.0, 5.0).size == 0

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            select_users_in_snr_range([10.0], 10.0, -1.0)


class TestRandomSelection:
    def test_size_and_uniqueness(self):
        chosen = select_users_random(10, 4, rng=0)
        assert chosen.size == 4
        assert np.unique(chosen).size == 4

    def test_deterministic_given_seed(self):
        assert (select_users_random(10, 3, rng=1)
                == select_users_random(10, 3, rng=1)).all()

    def test_rejects_overdraw(self):
        with pytest.raises(ValueError):
            select_users_random(3, 4)


class TestConditionAwareSelection:
    def test_selects_requested_count(self):
        channel = rayleigh_channel(4, 8, rng=0)
        chosen = select_best_conditioned(channel, 3)
        assert chosen.size == 3

    def test_beats_random_selection_on_average(self):
        rng = np.random.default_rng(1)
        greedy_kappas, random_kappas = [], []
        for seed in range(30):
            channel = rayleigh_channel(4, 8, rng=seed)
            greedy = select_best_conditioned(channel, 3)
            random = select_users_random(8, 3, rng=rng)
            greedy_kappas.append(condition_number(channel[:, greedy]))
            random_kappas.append(condition_number(channel[:, random]))
        assert np.median(greedy_kappas) < np.median(random_kappas)

    def test_single_user_is_strongest(self):
        channel = rayleigh_channel(4, 5, rng=2)
        chosen = select_best_conditioned(channel, 1)
        energies = np.sum(np.abs(channel) ** 2, axis=0)
        assert chosen[0] == int(np.argmax(energies))


class TestRoundRobin:
    def test_full_group_is_single_slot(self):
        assert round_robin_groups(4, 4) == [(0, 1, 2, 3)]

    def test_rotation_covers_all_clients_fairly(self):
        groups = round_robin_groups(4, 3)
        assert len(groups) == 4
        counts = np.zeros(4, dtype=int)
        for group in groups:
            assert len(group) == 3
            for client in group:
                counts[client] += 1
        assert (counts == 3).all()

    def test_rejects_oversized_group(self):
        with pytest.raises(ValueError):
            round_robin_groups(2, 3)


class TestTdmaSchedule:
    def test_airtime_share(self):
        schedule = TdmaSchedule(round_robin_groups(4, 3))
        for client in range(4):
            assert schedule.client_airtime_share(client) == pytest.approx(0.75)

    def test_network_throughput_is_slot_average(self):
        schedule = TdmaSchedule([(0, 1), (2, 3)])
        throughput = schedule.network_throughput_bps(
            lambda group: 10.0 if 0 in group else 30.0)
        assert throughput == pytest.approx(20.0)

    def test_per_client_split(self):
        schedule = TdmaSchedule(round_robin_groups(3, 2))
        per_client = schedule.per_client_throughput_bps(lambda group: 12.0, 3)
        # 3 slots, each client in 2 of them, 6 Mbps per appearance.
        assert np.allclose(per_client, 2 * 6.0 / 3)

    def test_fewer_clients_per_slot_can_lose(self):
        """The Fig. 11 argument: even if smaller groups get a per-slot
        boost, the idle clients' airtime loss can dominate."""
        full = TdmaSchedule(round_robin_groups(4, 4))
        reduced = TdmaSchedule(round_robin_groups(4, 3))
        # Full group achieves 80; any 3-subset achieves 66 (a 10% per-slot
        # boost per client does not compensate the lost stream).
        full_throughput = full.network_throughput_bps(lambda g: 80.0)
        reduced_throughput = reduced.network_throughput_bps(lambda g: 66.0)
        assert full_throughput > reduced_throughput
