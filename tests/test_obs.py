"""Observability: lifecycle tracing, stage latency, metrics export (ISSUE-10).

The contract under test has three legs.  **Tracing is truthful**: a
traced frame's event record is the complete ordered story of its
lifecycle — submit → admit → first-lane → (degrade/expedite/evict) →
detect-done → viterbi → crc → decode-done → resolve/expire/cancel —
across the single runtime *and* the farm (route/restart/replay ride the
same trace through worker pipes and supervisor replays).  **Tracing is
free of side effects**: every decode path is bit-identical with tracing
on or off, for every admission order, tick strategy and shard count.
**The export plane never re-derives**: every Prometheus sample equals
its ``summary()`` source, iterated straight off the COUNTER_KEYS /
GAUGE_KEYS tables, including over the service socket.

Plus the stats satellites: the farm aggregate recomputes (not sums) the
clamped orchestration residue, tolerates shards that answered no stats
poll, keeps percentile windows bounded, and round-trips a single shard's
summary unchanged.
"""

import json
import pickle

import numpy as np
import pytest

from repro.constellation import qam
from repro.obs import (
    COUNTER_KEYS,
    GAUGE_KEYS,
    FrameTrace,
    FrameTracer,
    chrome_trace,
    chrome_trace_events,
    export_jsonl,
    merge_traces,
    prometheus_text,
)
from repro.runtime import STAGES, RuntimeStats, UplinkRuntime
from repro.runtime.stats import aggregate_summaries
from repro.service import CellSiteClient, CellSiteServer, DetectorFarm
from repro.sphere import ComplexityCounters, ListSphereDecoder, SphereDecoder

from test_runtime import (
    _assert_identical,
    _coded_config,
    _make_coded_frame,
    _make_frame,
    _reference,
)
from test_runtime_qos import _Clock, _tagged_frame
from test_service import _check_all, _mixed_frames


# ----------------------------------------------------------------------
# Tracer mechanics: off-by-default, bounded, mergeable, picklable
# ----------------------------------------------------------------------

def test_tracer_disabled_is_a_noop():
    tracer = FrameTracer()                      # off by default
    trace = tracer.start(0, kind="hard")
    assert trace is None
    tracer.emit(trace, "submit", t=1.0)         # all no-ops on None
    tracer.finish(trace)
    assert tracer.frames_traced == 0
    assert tracer.traces() == []
    assert tracer.export_jsonl() == ""
    assert tracer.chrome_trace()["traceEvents"] == []


def test_tracer_buffers_are_bounded_and_overflow_is_counted():
    tracer = FrameTracer(enabled=True, retain_frames=2,
                         max_events_per_frame=3, clock=lambda: 0.0)
    for frame_id in range(3):
        trace = tracer.start(frame_id)
        for event in range(5):                  # two past the cap
            tracer.emit(trace, f"e{event}")
        assert trace.names() == ["e0", "e1", "e2"]
        assert trace.dropped == 2
        tracer.finish(trace)
    assert tracer.frames_traced == 3
    assert tracer.events_dropped == 6
    retained = tracer.traces()                  # ring kept the newest two
    assert [trace.frame_id for trace in retained] == [1, 2]
    assert json.loads(export_jsonl(retained).splitlines()[0])["dropped"] == 2
    tracer.clear()
    assert tracer.traces() == []

    with pytest.raises(ValueError):
        FrameTracer(retain_frames=0)
    with pytest.raises(ValueError):
        FrameTracer(max_events_per_frame=0)


def test_merge_traces_interleaves_by_time_and_fills_labels():
    farm_side = FrameTrace(7, {"shard": 1})
    farm_side.add(1.0, "route", {"shard": 1})
    farm_side.add(9.0, "replay", None)
    worker_side = FrameTrace(7, {"shard": 0, "kind": "hard"})
    worker_side.add(2.0, "submit", None)
    worker_side.add(3.0, "detect-done", None)
    worker_side.dropped = 4

    merged = merge_traces(farm_side, worker_side)
    assert merged is farm_side
    assert merged.names() == ["route", "submit", "detect-done", "replay"]
    assert merged.labels == {"shard": 1, "kind": "hard"}  # primary wins
    assert merged.dropped == 4
    assert merged.first("submit") == 2.0
    assert merged.first("missing") is None

    only = FrameTrace(8)
    assert merge_traces(None, only) is only
    assert merge_traces(only, None) is only
    assert merge_traces(None, None) is None


def test_frame_trace_round_trips_through_pickle():
    """Traces cross the farm's worker pipes inside result payloads."""
    trace = FrameTrace(3, {"shard": 2})
    trace.add(0.5, "submit", {"deadline_s": 1.0})
    trace.add(0.7, "resolve", None)
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.frame_id == 3
    assert clone.labels == {"shard": 2}
    assert clone.events == trace.events
    assert clone.dropped == 0
    assert "resolve" in repr(clone)


# ----------------------------------------------------------------------
# Runtime lifecycle traces
# ----------------------------------------------------------------------

def test_runtime_traces_complete_ordered_lifecycle():
    rng = np.random.default_rng(0)
    runtime = UplinkRuntime(trace=True)
    hard = _make_frame(SphereDecoder(qam(16)), 4, 2, 18.0, rng)
    soft = _make_frame(ListSphereDecoder(qam(4), list_size=4), 3, 2, 15.0,
                       rng, soft=True)
    handles = [runtime.submit(hard), runtime.submit(soft)]
    runtime.drain()

    traces = runtime.tracer.traces()
    assert len(traces) == 2
    by_id = {trace.frame_id: trace for trace in traces}
    for handle, kind in zip(handles, ("hard", "soft")):
        trace = by_id[handle.frame_id]
        assert trace.names() == ["submit", "admit", "first-lane",
                                 "detect-done", "resolve"]
        assert trace.labels == {"kind": kind, "priority": 0}
        times = [t for t, _, _ in trace.events]
        assert times == sorted(times)
        assert trace.first("submit") == handle.submitted_at
        assert trace.first("resolve") == handle.completed_at
        resolve_attrs = trace.events[-1][2]
        assert resolve_attrs["resolution"] == "completed"
        assert not resolve_attrs["degraded"]


def test_coded_frame_trace_includes_decode_stage_events():
    rng = np.random.default_rng(1)
    runtime = UplinkRuntime(trace=True)
    config = _coded_config(4, payload_bits=40)
    handle = runtime.submit(_make_coded_frame(config, SphereDecoder(qam(4)),
                                              25.0, rng))
    runtime.drain()
    (trace,) = runtime.tracer.traces()
    assert trace.names() == ["submit", "admit", "first-lane", "detect-done",
                             "viterbi", "crc", "decode-done", "resolve"]
    crc_attrs = next(attrs for _, name, attrs in trace.events
                     if name == "crc")
    assert crc_attrs["streams"] == 2
    assert 0 <= crc_attrs["crc_ok"] <= 2
    assert handle.resolution == "completed"


def test_qos_events_are_traced_expire_degrade_expedite():
    # Expiry: past-deadline frame records evict + expire, never resolve.
    rng = np.random.default_rng(2)
    clock = _Clock()
    runtime = UplinkRuntime(capacity=4, clock=clock, trace=True)
    decoder = SphereDecoder(qam(16))
    runtime.submit(_tagged_frame(decoder, rng, deadline_s=1.0,
                                 num_subcarriers=4, num_symbols=3))
    clock.now = 10.0
    runtime.drain()
    doomed = next(trace for trace in runtime.tracer.traces()
                  if "expire" in trace.names())
    names = doomed.names()
    assert "evict" in names and "resolve" not in names
    assert names[-1] == "expire"
    assert names.index("evict") < names.index("expire")

    # Degradation: degrade is stamped before the queue expedite.
    rng = np.random.default_rng(3)
    clock = _Clock()
    runtime = UplinkRuntime(capacity=8, drain_threshold=0, clock=clock,
                            trace=True)
    handle = runtime.submit(_tagged_frame(decoder, rng, deadline_s=10.0,
                                          num_subcarriers=4, num_symbols=3,
                                          snr_db=8.0))
    clock.now = 8.0                     # inside the degrade margin
    runtime.drain()
    assert handle.degraded
    (trace,) = runtime.tracer.traces()
    names = trace.names()
    assert "degrade" in names
    assert names.index("degrade") < names.index("detect-done")
    resolve_attrs = trace.events[-1][2]
    assert resolve_attrs["degraded"] is True

    # Cancellation: the trace closes with an explicit cancel event.
    rng = np.random.default_rng(4)
    runtime = UplinkRuntime(trace=True)
    victim = runtime.submit(_make_frame(decoder, 3, 2, 15.0, rng))
    runtime.cancel(victim)
    (trace,) = runtime.tracer.traces()
    assert trace.names()[-1] == "cancel"
    assert trace.first("cancel") == victim.completed_at


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------

def _traced_runtime(seed=5):
    rng = np.random.default_rng(seed)
    runtime = UplinkRuntime(trace=True)
    frames = [_make_frame(SphereDecoder(qam(16)), 4, 2, 18.0, rng),
              _make_frame(ListSphereDecoder(qam(4), list_size=4), 3, 2,
                          15.0, rng, soft=True)]
    handles = [runtime.submit(frame) for frame in frames]
    runtime.drain()
    return runtime, frames, handles


def test_jsonl_export_is_parseable_and_complete():
    runtime, _, handles = _traced_runtime()
    records = [json.loads(line)
               for line in runtime.tracer.export_jsonl().splitlines()]
    headers = [r for r in records if r["type"] == "frame"]
    events = [r for r in records if r["type"] == "event"]
    assert {r["frame_id"] for r in headers} == {h.frame_id for h in handles}
    assert all(r["dropped"] == 0 for r in headers)
    assert sum(r["events"] for r in headers) == len(events)
    submits = [r for r in events if r["name"] == "submit"]
    assert {r["frame_id"] for r in submits} == {h.frame_id for h in handles}
    assert all(set(r) <= {"type", "frame_id", "t", "name", "attrs"}
               for r in events)


def test_chrome_trace_spans_are_viewable_and_nonnegative():
    runtime, _, handles = _traced_runtime(seed=6)
    document = runtime.tracer.chrome_trace()
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    json.dumps(document)                        # loadable by Perfetto
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["tid"] for e in metadata} == {h.frame_id for h in handles}
    # Each completed uncoded frame contributes its three stage spans.
    for handle in handles:
        mine = [e["name"] for e in spans if e["tid"] == handle.frame_id]
        assert mine == ["queue-wait", "detect", "resolve"]
    assert all(e["dur"] >= 0.0 for e in spans)
    assert all(e["s"] == "t" for e in instants)
    # Span chain is contiguous: each span starts where the previous ended.
    for handle in handles:
        mine = sorted((e for e in spans if e["tid"] == handle.frame_id),
                      key=lambda e: e["ts"])
        for left, right in zip(mine, mine[1:]):
            assert right["ts"] == pytest.approx(left["ts"] + left["dur"])
    assert chrome_trace_events([]) == []
    assert chrome_trace([])["traceEvents"] == []
    assert chrome_trace_events([FrameTrace(0)]) == []   # eventless trace


# ----------------------------------------------------------------------
# Bit-exactness: tracing is pure observation
# ----------------------------------------------------------------------

def test_tracing_bit_identical_across_orders_and_tick_strategies():
    rng = np.random.default_rng(7)
    frames = _mixed_frames(rng, repeats=1)
    references = [_reference(frame) for frame in frames]
    for tick_strategy in ("numpy", "compiled"):
        for order in (list(range(len(frames))),
                      list(reversed(range(len(frames))))):
            for trace in (False, True):
                runtime = UplinkRuntime(trace=trace,
                                        tick_strategy=tick_strategy)
                handles = {index: runtime.submit(frames[index])
                           for index in order}
                runtime.drain()
                for index, handle in handles.items():
                    _assert_identical(
                        handle.result(), references[index],
                        frames[index].noise_variance is not None)


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_traced_inline_farm_bit_identical(num_shards):
    rng = np.random.default_rng(8)
    frames = _mixed_frames(rng)
    with DetectorFarm(num_shards, backend="inline", trace=True) as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.drain()
        _check_all(handles, frames)
        traces = farm.tracer.traces()
    assert len(traces) == len(frames)
    for trace in traces:
        names = trace.names()
        assert names[0] == "route"
        assert names[-1] == "resolve"
        assert {"submit", "admit", "first-lane", "detect-done"} <= set(names)
        assert 0 <= trace.labels["shard"] < num_shards


def test_killed_worker_replay_annotates_the_same_trace():
    """SIGKILL one shard mid-load with tracing on: the replayed frames'
    traces carry the supervision story (route → restart → replay) fused
    with the fresh worker's decode events, and every result is still
    bit-identical."""
    rng = np.random.default_rng(9)
    frames = _mixed_frames(rng)
    with DetectorFarm(2, backend="process", trace=True) as farm:
        handles = [farm.submit(frame) for frame in frames]
        farm.kill_shard(0)
        farm.drain()
        _check_all(handles, frames)
        assert sum(farm.stats()["restarts"]) >= 1
        traces = farm.tracer.traces()
    assert len(traces) == len(frames)
    replayed = [trace for trace in traces if "restart" in trace.names()]
    assert replayed, "the killed shard had in-flight frames"
    for trace in replayed:
        names = trace.names()
        assert names.index("route") < names.index("restart")
        assert names.index("restart") < names.index("replay")
        assert names.index("replay") < names.index("submit")
        assert names[-1] == "resolve"
        restart_attrs = next(attrs for _, name, attrs in trace.events
                             if name == "restart")
        assert restart_attrs["shard"] == 0
        assert restart_attrs["restarts"] >= 1


# ----------------------------------------------------------------------
# Stage-latency decomposition
# ----------------------------------------------------------------------

def test_stage_components_partition_frame_latency():
    rng = np.random.default_rng(10)
    runtime = UplinkRuntime()
    config = _coded_config(4, payload_bits=40)
    frames = [_make_frame(SphereDecoder(qam(16)), 4, 2, 18.0, rng),
              _make_coded_frame(config, SphereDecoder(qam(4)), 25.0, rng)]
    for frame in frames:
        runtime.submit(frame)
    done = runtime.drain()

    stats = runtime.stats
    total_latency = sum(handle.latency_s for handle in done)
    total_stages = sum(stats.stage_totals_s.values())
    assert total_stages == pytest.approx(total_latency)
    assert all(value >= 0.0 for value in stats.stage_totals_s.values())

    report = stats.stage_latency_percentiles()
    assert set(report) == set(STAGES)
    for stage_report in report.values():
        assert set(stage_report) == {50, 90, 99}
        assert stage_report[50] <= stage_report[99]
    assert stats.stage_latency_percentiles(priority=0) == report
    assert stats.stage_latency_percentiles(priority=9) == {}

    summary = stats.summary()
    for stage in STAGES:
        assert summary[f"stage_{stage}_s"] == pytest.approx(
            stats.stage_totals_s[stage])
    assert summary["stage_latency_percentiles_s"] == report
    assert RuntimeStats().stage_latency_percentiles() == {}


# ----------------------------------------------------------------------
# Metrics export plane
# ----------------------------------------------------------------------

def _parse_prometheus(text):
    """Scrape body -> {(name, sorted-label-items): value}, validating
    the HELP/TYPE discipline along the way."""
    samples, typed = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split()
            typed[name] = kind
            continue
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            name, label_body = name_part.split("{", 1)
            labels = tuple(sorted(
                tuple(pair.split("=", 1))
                for pair in label_body.rstrip("}").split(",")))
        else:
            name, labels = name_part, ()
        assert name in typed, f"untyped sample {name}"
        samples[(name, labels)] = float(value)
    return samples


def test_prometheus_samples_equal_their_summary_sources():
    runtime, _, _ = _traced_runtime(seed=11)
    summary = runtime.stats.summary()
    samples = _parse_prometheus(prometheus_text(summary))
    for key, name in COUNTER_KEYS.items():
        if key in summary:
            assert samples[(name, ())] == pytest.approx(float(summary[key]))
    for key, name in GAUGE_KEYS.items():
        if key in summary:
            assert samples[(name, ())] == pytest.approx(float(summary[key]))
    for percentile, value in summary["latency_percentiles_s"].items():
        labels = (("quantile", f'"{percentile / 100.0:g}"'),)
        assert samples[("repro_frame_latency_seconds", labels)] == (
            pytest.approx(value))
    for stage, report in summary["stage_latency_percentiles_s"].items():
        for percentile, value in report.items():
            labels = tuple(sorted(
                [("quantile", f'"{percentile / 100.0:g}"'),
                 ("stage", f'"{stage}"')]))
            assert samples[("repro_stage_latency_seconds", labels)] == (
                pytest.approx(value))

    # Per-class latency quantiles pick up a priority label.
    summary["latency_percentiles_by_class_s"] = {0: {50: 0.1}, 2: {50: 0.3}}
    samples = _parse_prometheus(prometheus_text(summary))
    labels = tuple(sorted([("quantile", '"0.5"'), ("priority", '"2"')]))
    assert samples[("repro_frame_latency_seconds", labels)] == (
        pytest.approx(0.3))

    # Instance labels reach every sample.
    labelled = prometheus_text(summary, labels={"cell": "a"})
    assert 'cell="a"' in labelled.splitlines()[-1]


def test_metrics_verb_matches_stats_over_the_socket():
    rng = np.random.default_rng(12)
    frames = _mixed_frames(rng, repeats=1)
    with CellSiteServer(DetectorFarm(2, backend="inline")) as server:
        with CellSiteClient(server.address) as cell:
            for frame in frames:
                cell.submit(frame)
            cell.drain()
            stats = cell.stats()
            samples = _parse_prometheus(cell.metrics())
    assert samples[("repro_frames_completed_total", ())] == len(frames)
    assert samples[("repro_shards", ())] == 2.0
    assert samples[("repro_shards_reporting", ())] == 2.0
    for shard, routed in enumerate(stats["frames_routed"]):
        labels = (("shard", f'"{shard}"'),)
        assert samples[("repro_shard_frames_routed_total", labels)] == routed
        assert samples[("repro_shard_up", labels)] == 1.0
    assert samples[("repro_searches_completed_total", ())] == (
        stats["searches_completed"])


# ----------------------------------------------------------------------
# Stats satellites: aggregation, windows, round-trips
# ----------------------------------------------------------------------

def test_aggregate_recomputes_orchestration_from_summed_totals():
    """Per-shard orchestration is clamped at zero, so the farm total
    must come from the summed duration/kernel pair — naively summing the
    clamped per-shard values would report 1.5 s here, not 1.0 s."""
    shard_a = {"tick_duration_s": 1.0, "tick_kernel_s": 1.5}   # clamps to 0
    shard_b = {"tick_duration_s": 2.0, "tick_kernel_s": 0.5}   # 1.5
    report = aggregate_summaries([shard_a, shard_b])
    assert report["tick_orchestration_s"] == pytest.approx(1.0)
    assert report["kernel_time_fraction"] == pytest.approx(2.0 / 3.0)


def test_aggregate_tolerates_unreporting_shards():
    rng = np.random.default_rng(13)
    runtime = UplinkRuntime()
    runtime.submit(_make_frame(SphereDecoder(qam(4)), 3, 2, 15.0, rng))
    runtime.drain()
    summary = runtime.stats.summary()
    report = aggregate_summaries([summary, None])
    assert report["shards"] == 2
    assert report["shards_reporting"] == 1
    assert report["frames_completed"] == 1
    assert report["per_shard"] == [summary, None]
    samples = _parse_prometheus(prometheus_text(report))
    assert samples[("repro_shard_up", (("shard", '"0"'),))] == 1.0
    assert samples[("repro_shard_up", (("shard", '"1"'),))] == 0.0
    assert ("repro_shard_frames_completed_total",
            (("shard", '"1"'),)) not in samples


def test_latency_windows_evict_oldest_samples():
    stats = RuntimeStats(latency_window=4)
    for index in range(10):
        stats.record_complete(
            float(index), latency_s=float(index + 1), detections=1,
            counters=ComplexityCounters(),
            stages={"queue_wait": float(index + 1), "detect": 0.0,
                    "decode": 0.0, "resolve": 0.0})
    window = [7.0, 8.0, 9.0, 10.0]              # the newest four only
    expected = {int(p): float(np.percentile(window, p))
                for p in (50, 90, 99)}
    assert stats.latency_percentiles() == pytest.approx(expected)
    assert stats.stage_latency_percentiles()["queue_wait"] == (
        pytest.approx(expected))
    # Totals keep counting across evictions; windows do not.
    assert stats.stage_totals_s["queue_wait"] == pytest.approx(55.0)
    assert stats.latency_percentiles(priority=0) == pytest.approx(expected)
    assert stats.latency_percentiles(priority=3) == {}


def test_single_shard_summary_round_trips_through_aggregation():
    rng = np.random.default_rng(14)
    runtime = UplinkRuntime()
    for _ in range(3):
        runtime.submit(_make_frame(SphereDecoder(qam(16)), 4, 2, 18.0, rng))
    runtime.drain()
    summary = runtime.stats.summary()
    report = aggregate_summaries([summary])
    assert report["shards"] == report["shards_reporting"] == 1
    for key in ("frames_submitted", "frames_completed", "searches_completed",
                "ticks", "visited_nodes", "ped_calcs", "elapsed_s",
                "frames_per_second", "mean_lane_occupancy",
                "tick_duration_s", "tick_kernel_s", "tick_orchestration_s",
                "kernel_time_fraction", "crc_failure_rate",
                "deadline_miss_rate", "stage_queue_wait_s",
                "stage_detect_s", "stage_decode_s", "stage_resolve_s"):
        assert report[key] == pytest.approx(summary[key]), key
    # The unmergeable sub-reports ride along verbatim.
    assert report["per_shard"] == [summary]
    assert report["per_shard"][0]["latency_percentiles_s"] == (
        summary["latency_percentiles_s"])
    assert "tick_duration_ema_s" in report["per_shard"][0]
