"""Full-stack integration: the complete PHY, in the time domain.

Coded payloads -> OFDM sample streams -> tapped-delay multipath + AWGN ->
CP removal / FFT -> per-subcarrier LS channel estimation from orthogonal
training -> per-subcarrier sphere decoding -> deinterleave / Viterbi /
CRC.  This is the WARPLab receive pipeline of the paper's section 4, with
no frequency-domain shortcuts anywhere.
"""

import numpy as np
import pytest

from repro.channel import awgn, sample_taps
from repro.constellation import qam
from repro.detect import SphereDetector, ZeroForcingDetector
from repro.ofdm import (
    WIFI_20MHZ,
    apply_multipath,
    demodulate,
    estimate_channel,
    frequency_response,
    modulate,
    training_grid,
)
from repro.phy import build_uplink_frame, default_config, random_payloads
from repro.phy.receiver import recover_uplink
from repro.sphere import geosphere_decoder


def run_full_stack(num_clients, num_antennas, order, noise_variance, seed,
                   detector=None, estimate=True):
    """One complete time-domain uplink frame; returns CRC verdicts."""
    rng = np.random.default_rng(seed)
    config = default_config(order=order, payload_bits=184)
    constellation = config.constellation
    if detector is None:
        detector = SphereDetector(geosphere_decoder(constellation))

    taps = sample_taps(num_antennas, num_clients, num_taps=5,
                       rms_delay_spread_taps=1.5, rng=rng)
    true_channels = frequency_response(taps, WIFI_20MHZ)

    # --- channel sounding (one training symbol per client, in turn) ----
    training = training_grid(WIFI_20MHZ, rng=rng)
    sounding = np.zeros((num_clients, 48, num_antennas), dtype=complex)
    for client in range(num_clients):
        streams = np.zeros((num_clients, WIFI_20MHZ.symbol_samples),
                           dtype=complex)
        streams[client] = modulate(training[None, :], WIFI_20MHZ)
        received = apply_multipath(streams, taps)
        received += awgn(received.shape, noise_variance, rng)
        for antenna in range(num_antennas):
            sounding[client, :, antenna] = demodulate(
                received[antenna], WIFI_20MHZ)[0][0]
    channels = (estimate_channel(sounding, training)
                if estimate else true_channels)

    # --- data frame ------------------------------------------------------
    payloads = random_payloads(num_clients, config, rng)
    frame = build_uplink_frame(payloads, config)
    streams = np.stack([
        modulate(stream.grid, WIFI_20MHZ) for stream in frame.streams
    ])
    received = apply_multipath(streams, taps)
    received += awgn(received.shape, noise_variance, rng)
    rx_grids = np.stack([
        demodulate(received[antenna], WIFI_20MHZ)[0]
        for antenna in range(num_antennas)
    ], axis=2)  # (symbols, subcarriers, antennas)

    # --- per-subcarrier MIMO detection ----------------------------------
    num_symbols = frame.num_ofdm_symbols
    detected = np.empty((num_symbols, 48, num_clients), dtype=np.int64)
    for subcarrier in range(48):
        block = rx_grids[:, subcarrier, :]
        detected[:, subcarrier, :] = detector.detect_block(
            channels[subcarrier], block, noise_variance)

    decisions = recover_uplink(detected, frame.streams[0].num_pad_bits, config)
    return payloads, decisions


class TestFullStack:
    @pytest.mark.parametrize("order", [4, 16])
    def test_clean_channel_delivers_all_frames(self, order):
        payloads, decisions = run_full_stack(
            2, 4, order, noise_variance=1e-6, seed=1)
        for payload, decision in zip(payloads, decisions):
            assert decision.crc_ok
            assert (decision.payload_bits == payload).all()

    def test_moderate_noise_with_estimated_csi(self):
        payloads, decisions = run_full_stack(
            2, 4, 16, noise_variance=3e-4, seed=2, estimate=True)
        assert all(decision.crc_ok for decision in decisions)

    def test_four_clients_four_antennas(self):
        payloads, decisions = run_full_stack(
            4, 4, 4, noise_variance=1e-4, seed=3)
        assert all(decision.crc_ok for decision in decisions)

    def test_heavy_noise_fails_crc(self):
        _, decisions = run_full_stack(2, 4, 64, noise_variance=0.5, seed=4)
        assert not all(decision.crc_ok for decision in decisions)

    def test_sphere_decoder_beats_zf_through_the_full_stack(self):
        """The paper's claim survives the complete pipeline: with the same
        samples and estimated CSI, Geosphere delivers frames ZF loses."""
        constellation = qam(16)
        sphere_ok = zf_ok = 0
        for seed in range(6):
            _, sphere_decisions = run_full_stack(
                4, 4, 16, noise_variance=8e-3, seed=seed,
                detector=SphereDetector(geosphere_decoder(constellation)))
            _, zf_decisions = run_full_stack(
                4, 4, 16, noise_variance=8e-3, seed=seed,
                detector=ZeroForcingDetector(constellation))
            sphere_ok += sum(d.crc_ok for d in sphere_decisions)
            zf_ok += sum(d.crc_ok for d in zf_decisions)
        assert sphere_ok >= zf_ok
        assert sphere_ok > 0

    def test_estimated_csi_close_to_true_csi_outcome(self):
        """At working SNR, estimation error must not flip the outcome."""
        _, with_estimation = run_full_stack(2, 4, 16, 3e-4, seed=5,
                                            estimate=True)
        _, with_truth = run_full_stack(2, 4, 16, 3e-4, seed=5,
                                       estimate=False)
        assert ([d.crc_ok for d in with_estimation]
                == [d.crc_ok for d in with_truth])
